// Tests for the trace substrate: synthetic generators, profiles, and I/O.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <array>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <set>
#include <sstream>
#include <vector>

#include "core/farmer.hpp"
#include "persist/checkpoint.hpp"
#include "trace/generator.hpp"
#include "trace/trace_io.hpp"
#include "trace/trace_stream.hpp"

namespace farmer {
namespace {

WorkloadProfile tiny_hp() {
  auto p = WorkloadProfile::hp().scaled(0.02);
  return p;
}

TEST(Generator, DeterministicForSeed) {
  const Trace a = generate_trace(tiny_hp(), 42);
  const Trace b = generate_trace(tiny_hp(), 42);
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].timestamp, b.records[i].timestamp) << i;
    EXPECT_EQ(a.records[i].file, b.records[i].file) << i;
    EXPECT_EQ(a.records[i].process, b.records[i].process) << i;
  }
}

TEST(Generator, DifferentSeedsDiffer) {
  const Trace a = generate_trace(tiny_hp(), 1);
  const Trace b = generate_trace(tiny_hp(), 2);
  bool any_diff = a.records.size() != b.records.size();
  for (std::size_t i = 0; !any_diff && i < a.records.size(); ++i)
    any_diff = a.records[i].file != b.records[i].file;
  EXPECT_TRUE(any_diff);
}

TEST(Generator, TimestampsNonDecreasing) {
  const Trace t = generate_trace(tiny_hp(), 7);
  for (std::size_t i = 1; i < t.records.size(); ++i)
    EXPECT_LE(t.records[i - 1].timestamp, t.records[i].timestamp) << i;
}

TEST(Generator, RecordsReferenceValidFiles) {
  const Trace t = generate_trace(tiny_hp(), 7);
  ASSERT_GT(t.records.size(), 0u);
  for (const auto& r : t.records) {
    ASSERT_TRUE(r.file.valid());
    ASSERT_LT(r.file.value(), t.dict->files.size());
    EXPECT_TRUE(r.user_token.valid());
    EXPECT_TRUE(r.process_token.valid());
    EXPECT_TRUE(r.host_token.valid());
    EXPECT_TRUE(r.dev_token.valid());
    EXPECT_TRUE(r.fid_token.valid());
  }
}

TEST(Generator, HpHasPaths) {
  const Trace t = generate_trace(tiny_hp(), 7);
  EXPECT_TRUE(t.has_paths);
  std::size_t with_path = 0;
  for (const auto& r : t.records)
    if (r.path.valid()) ++with_path;
  EXPECT_EQ(with_path, t.records.size());
}

TEST(Generator, InsAndResLackPaths) {
  for (auto kind : {TraceKind::kINS, TraceKind::kRES}) {
    const Trace t = make_paper_trace(kind, 5, 0.02);
    EXPECT_FALSE(t.has_paths);
    for (const auto& r : t.records) EXPECT_FALSE(r.path.valid());
  }
}

TEST(Generator, LlnlJobModeProducesJobsAndManyFiles) {
  auto p = WorkloadProfile::llnl().scaled(0.05);
  const Trace t = generate_trace(p, 11);
  ASSERT_GT(t.records.size(), 0u);
  std::set<std::uint32_t> jobs;
  for (const auto& r : t.records)
    if (r.job.valid()) jobs.insert(r.job.value());
  EXPECT_GT(jobs.size(), 1u);
  // Per-rank checkpoint files dominate the namespace.
  EXPECT_GT(t.file_count(), p.jobs * p.ranks_per_job);
}

TEST(Generator, GroundTruthGroupsPopulated) {
  const Trace t = generate_trace(tiny_hp(), 7);
  std::size_t grouped = 0;
  for (const auto& f : t.dict->files)
    if (f.group != kNoGroup) ++grouped;
  EXPECT_GT(grouped, 0u);
}

TEST(Generator, FileSizesWithinClamp) {
  const Trace t = generate_trace(tiny_hp(), 7);
  for (const auto& f : t.dict->files) {
    EXPECT_GE(f.size_bytes, 512u);
    EXPECT_LE(f.size_bytes, 64u * 1024 * 1024);
  }
}

TEST(Generator, ScaledProfileShrinksVolume) {
  const Trace big = generate_trace(WorkloadProfile::hp().scaled(0.05), 3);
  const Trace small = generate_trace(WorkloadProfile::hp().scaled(0.01), 3);
  EXPECT_GT(big.records.size(), small.records.size());
  EXPECT_GT(big.file_count(), small.file_count());
}

TEST(Generator, InterleavingPresent) {
  // Concurrency must interleave sessions: somewhere two adjacent records
  // come from different processes.
  const Trace t = generate_trace(tiny_hp(), 7);
  bool interleaved = false;
  for (std::size_t i = 1; i < t.records.size() && !interleaved; ++i)
    interleaved = t.records[i].process != t.records[i - 1].process;
  EXPECT_TRUE(interleaved);
}

TEST(Generator, PaperTraceFactoryCoversAllKinds) {
  for (auto kind :
       {TraceKind::kLLNL, TraceKind::kINS, TraceKind::kRES, TraceKind::kHP}) {
    const Trace t = make_paper_trace(kind, 1, 0.02);
    EXPECT_EQ(t.kind, kind);
    EXPECT_GT(t.records.size(), 0u) << trace_kind_name(kind);
  }
}

TEST(TraceKindName, AllNamed) {
  EXPECT_STREQ(trace_kind_name(TraceKind::kLLNL), "LLNL");
  EXPECT_STREQ(trace_kind_name(TraceKind::kINS), "INS");
  EXPECT_STREQ(trace_kind_name(TraceKind::kRES), "RES");
  EXPECT_STREQ(trace_kind_name(TraceKind::kHP), "HP");
}

TEST(Dictionary, PathStringRebuilds) {
  TraceDictionary d;
  SmallVector<TokenId, 8> comps;
  comps.push_back(d.tokens.intern("home"));
  comps.push_back(d.tokens.intern("user1"));
  const PathId p = d.add_path(std::move(comps));
  EXPECT_EQ(d.path_string(p), "/home/user1");
  EXPECT_EQ(d.path_string(PathId()), "");
}

// ------------------------------------------------------------ trace I/O --

class TraceIoTest : public ::testing::Test {
 protected:
  void TearDown() override { std::remove(path_.c_str()); }
  // ctest runs each test as its own process, concurrently — the path must
  // be per-process unique or parallel tests clobber each other's files.
  std::string path_ = ::testing::TempDir() + "farmer_trace_test_" +
                      std::to_string(::getpid()) + ".bin";
};

TEST_F(TraceIoTest, BinaryRoundTrip) {
  const Trace t = generate_trace(tiny_hp(), 99);
  write_trace_binary(t, path_);
  const Trace u = read_trace_binary(path_);
  EXPECT_EQ(u.name, t.name);
  EXPECT_EQ(u.kind, t.kind);
  EXPECT_EQ(u.has_paths, t.has_paths);
  ASSERT_EQ(u.records.size(), t.records.size());
  ASSERT_EQ(u.file_count(), t.file_count());
  for (std::size_t i = 0; i < t.records.size(); ++i) {
    EXPECT_EQ(u.records[i].timestamp, t.records[i].timestamp);
    EXPECT_EQ(u.records[i].file, t.records[i].file);
    EXPECT_EQ(u.records[i].user_token, t.records[i].user_token);
  }
  // Dictionary strings survive.
  for (std::size_t i = 0; i < t.dict->tokens.size(); ++i)
    EXPECT_EQ(u.dict->tokens.resolve(TokenId(static_cast<std::uint32_t>(i))),
              t.dict->tokens.resolve(TokenId(static_cast<std::uint32_t>(i))));
}

TEST_F(TraceIoTest, RejectsGarbage) {
  {
    std::FILE* f = std::fopen(path_.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("not a trace", f);
    std::fclose(f);
  }
  EXPECT_THROW((void)read_trace_binary(path_), std::runtime_error);
}

TEST_F(TraceIoTest, MissingFileThrows) {
  EXPECT_THROW((void)read_trace_binary("/nonexistent/dir/t.bin"),
               std::runtime_error);
}

TEST(TraceTsv, WritesHeaderAndRows) {
  const Trace t = generate_trace(tiny_hp(), 1);
  std::ostringstream os;
  write_trace_tsv(t, os, 5);
  const std::string out = os.str();
  EXPECT_NE(out.find("timestamp_us"), std::string::npos);
  // 1 header + 5 rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 6);
}

// ----------------------------------------------------- multi-tenant merge --

constexpr TraceKind kTwoTenants[] = {TraceKind::kHP, TraceKind::kINS};

MultiTenantTrace tiny_multi_tenant() {
  return make_multi_tenant_trace(kTwoTenants, 42, 0.02);
}

TEST(MultiTenantTrace_, ContiguousFileRangesCoverTheDictionary) {
  const MultiTenantTrace mt = tiny_multi_tenant();
  ASSERT_EQ(mt.tenant_count(), 2u);
  ASSERT_EQ(mt.file_begin.size(), 3u);
  EXPECT_EQ(mt.file_begin.front(), 0u);
  EXPECT_EQ(mt.file_begin.back(), mt.trace.file_count());
  EXPECT_LT(mt.file_begin[0], mt.file_begin[1]);
  EXPECT_LT(mt.file_begin[1], mt.file_begin[2]);
  // tenant_of agrees with the ranges at both sides of the boundary.
  EXPECT_EQ(mt.tenant_of(FileId(0)), 0u);
  EXPECT_EQ(mt.tenant_of(FileId(mt.file_begin[1] - 1)), 0u);
  EXPECT_EQ(mt.tenant_of(FileId(mt.file_begin[1])), 1u);
  EXPECT_EQ(
      mt.tenant_of(FileId(static_cast<std::uint32_t>(
          mt.trace.file_count() - 1))),
      1u);
}

TEST(MultiTenantTrace_, RecordsInterleaveButStayInTenantRanges) {
  const MultiTenantTrace mt = tiny_multi_tenant();
  ASSERT_GT(mt.trace.records.size(), 0u);
  std::set<std::uint32_t> tenants_seen;
  for (std::size_t i = 0; i < mt.trace.records.size(); ++i) {
    const auto& r = mt.trace.records[i];
    ASSERT_LT(r.file.value(), mt.trace.file_count()) << i;
    tenants_seen.insert(mt.tenant_of(r.file));
    if (i > 0) {
      EXPECT_LE(mt.trace.records[i - 1].timestamp, r.timestamp)
          << "not time-sorted at " << i;
    }
  }
  EXPECT_EQ(tenants_seen.size(), 2u) << "one tenant produced no records";
}

// Tenants must share nothing: users, processes, ground-truth groups and
// every interned token are disjoint, so any cross-tenant correlation a
// miner later reports is a mining artifact by construction.
TEST(MultiTenantTrace_, TenantIdentitySpacesAreDisjoint) {
  const MultiTenantTrace mt = tiny_multi_tenant();
  std::array<std::set<std::uint32_t>, 2> users, procs, toks;
  std::array<std::set<std::uint32_t>, 2> groups;
  for (const auto& r : mt.trace.records) {
    const std::uint32_t t = mt.tenant_of(r.file);
    users[t].insert(r.user.value());
    procs[t].insert(r.process.value());
    toks[t].insert(r.user_token.value());
    toks[t].insert(r.process_token.value());
    toks[t].insert(r.host_token.value());
    toks[t].insert(r.dev_token.value());
    toks[t].insert(r.fid_token.value());
    toks[t].insert(r.program_token.value());
  }
  for (std::uint32_t f = 0; f < mt.trace.file_count(); ++f) {
    const FileMeta& m = mt.trace.dict->files[f];
    if (m.group != kNoGroup) groups[mt.tenant_of(FileId(f))].insert(m.group);
  }
  const auto disjoint = [](const std::set<std::uint32_t>& a,
                           const std::set<std::uint32_t>& b) {
    std::vector<std::uint32_t> common;
    std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                          std::back_inserter(common));
    return common.empty();
  };
  EXPECT_TRUE(disjoint(users[0], users[1]));
  EXPECT_TRUE(disjoint(procs[0], procs[1]));
  EXPECT_TRUE(disjoint(toks[0], toks[1]));
  EXPECT_TRUE(disjoint(groups[0], groups[1]));
}

TEST(MultiTenantTrace_, DeterministicForSeed) {
  const MultiTenantTrace a = tiny_multi_tenant();
  const MultiTenantTrace b = tiny_multi_tenant();
  ASSERT_EQ(a.trace.records.size(), b.trace.records.size());
  ASSERT_EQ(a.file_begin, b.file_begin);
  for (std::size_t i = 0; i < a.trace.records.size(); ++i) {
    EXPECT_EQ(a.trace.records[i].file, b.trace.records[i].file) << i;
    EXPECT_EQ(a.trace.records[i].timestamp, b.trace.records[i].timestamp)
        << i;
    EXPECT_EQ(a.trace.records[i].process, b.trace.records[i].process) << i;
  }
}

TEST(MultiTenantTrace_, HasPathsIsTheConjunction) {
  // HP has paths, INS does not: the merged stream must not claim paths.
  const MultiTenantTrace mixed = tiny_multi_tenant();
  EXPECT_FALSE(mixed.trace.has_paths);
  constexpr TraceKind kBothHp[] = {TraceKind::kHP, TraceKind::kHP};
  const MultiTenantTrace hp_only = make_multi_tenant_trace(kBothHp, 42, 0.02);
  EXPECT_TRUE(hp_only.trace.has_paths);
}

// ------------------------------------------------------- format versions --

std::string slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  EXPECT_TRUE(is.good()) << path;
  return std::string(std::istreambuf_iterator<char>(is),
                     std::istreambuf_iterator<char>());
}

void spit(const std::string& path, std::string_view bytes) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(os.good()) << path;
}

TEST_F(TraceIoTest, V2RoundTrip) {
  const Trace t = generate_trace(tiny_hp(), 99);
  write_trace_binary_v2(t, path_);
  const Trace u = read_trace_binary(path_);
  EXPECT_EQ(u.name, t.name);
  EXPECT_EQ(u.kind, t.kind);
  ASSERT_EQ(u.records.size(), t.records.size());
  for (std::size_t i = 0; i < t.records.size(); ++i) {
    EXPECT_EQ(u.records[i].timestamp, t.records[i].timestamp);
    EXPECT_EQ(u.records[i].file, t.records[i].file);
    EXPECT_EQ(u.records[i].user_token, t.records[i].user_token);
  }
}

TEST_F(TraceIoTest, V2AndV3AgreeOnTheSameTrace) {
  const Trace t = generate_trace(tiny_hp(), 7);
  write_trace_binary_v2(t, path_);
  const Trace via_v2 = read_trace_binary(path_);
  write_trace_binary(t, path_);
  const Trace via_v3 = read_trace_binary(path_);
  ASSERT_EQ(via_v2.records.size(), via_v3.records.size());
  for (std::size_t i = 0; i < via_v2.records.size(); ++i) {
    EXPECT_EQ(via_v2.records[i].timestamp, via_v3.records[i].timestamp);
    EXPECT_EQ(via_v2.records[i].file, via_v3.records[i].file);
  }
  std::string d2, d3;
  encode_dictionary(d2, *via_v2.dict);
  encode_dictionary(d3, *via_v3.dict);
  EXPECT_EQ(d2, d3);
}

/// A trace whose single path has more than 255 components — the case the
/// v2 writer used to truncate to uint8_t while still writing every
/// component, desyncing the stream for every reader.
Trace deep_path_trace() {
  Trace t;
  t.name = "deep";
  t.kind = TraceKind::kCustom;
  t.has_paths = true;
  t.dict = std::make_shared<TraceDictionary>();
  TraceDictionary& d = *t.dict;
  SmallVector<TokenId, 8> comps;
  for (int i = 0; i < 300; ++i)
    comps.push_back(d.tokens.intern("d" + std::to_string(i)));
  const PathId deep = d.add_path(std::move(comps));
  FileMeta m;
  m.path = deep;
  m.dev = d.tokens.intern("dev0");
  m.fid = d.tokens.intern("fid0");
  d.files.push_back(m);
  TraceRecord r;
  r.file = FileId(0);
  r.path = deep;
  r.dev_token = m.dev;
  r.fid_token = m.fid;
  t.records.push_back(r);
  return t;
}

TEST_F(TraceIoTest, V2WriterRefusesDeepPathsInsteadOfTruncating) {
  EXPECT_THROW(write_trace_binary_v2(deep_path_trace(), path_),
               std::runtime_error);
}

TEST_F(TraceIoTest, V3RoundTripsDeepPaths) {
  const Trace t = deep_path_trace();
  write_trace_binary(t, path_);
  const Trace u = read_trace_binary(path_);
  ASSERT_EQ(u.dict->paths.size(), 1u);
  EXPECT_EQ(u.dict->paths[0].size(), 300u);
  EXPECT_EQ(u.dict->path_string(PathId(0)), t.dict->path_string(PathId(0)));
}

// ------------------------------------------------- corrupt-input hardening --

/// Minimal v2 stream prefix: magic, version, empty name, kind, has_paths.
std::string v2_prefix(std::uint8_t kind = 4) {
  std::string s;
  const auto put32 = [&s](std::uint32_t v) {
    s.append(reinterpret_cast<const char*>(&v), 4);
  };
  put32(kTraceMagic);
  put32(kTraceVersion2);
  put32(0);  // empty name
  s.push_back(static_cast<char>(kind));
  s.push_back(0);  // has_paths
  return s;
}

void append32(std::string& s, std::uint32_t v) {
  s.append(reinterpret_cast<const char*>(&v), 4);
}
void append64(std::string& s, std::uint64_t v) {
  s.append(reinterpret_cast<const char*>(&v), 8);
}

/// Every huge decoded count must be rejected against the bytes actually
/// present *before* any allocation — a bit-flipped count used to reserve()
/// gigabytes (trace_io.cpp:144) or allocate a 4GB string (line 37).
TEST_F(TraceIoTest, HugeTokenCountThrowsWithoutAllocating) {
  std::string s = v2_prefix();
  append32(s, 0xFFFFFF00u);  // token count far beyond the file size
  spit(path_, s);
  EXPECT_THROW((void)read_trace_binary(path_), std::runtime_error);
}

TEST_F(TraceIoTest, HugeStringLengthThrowsWithoutAllocating) {
  std::string s = v2_prefix();
  append32(s, 1);            // one token...
  append32(s, 0xFFFFFF00u);  // ...whose length exceeds the file
  spit(path_, s);
  EXPECT_THROW((void)read_trace_binary(path_), std::runtime_error);
}

TEST_F(TraceIoTest, HugeRecordCountThrowsWithoutAllocating) {
  std::string s = v2_prefix();
  append32(s, 0);  // tokens
  append32(s, 0);  // paths
  append32(s, 0);  // files
  append64(s, 0x00FFFFFFFFFFFFFFull);
  spit(path_, s);
  EXPECT_THROW((void)read_trace_binary(path_), std::runtime_error);
}

TEST_F(TraceIoTest, OutOfRangeKindThrows) {
  std::string s = v2_prefix(/*kind=*/9);
  append32(s, 0);
  append32(s, 0);
  append32(s, 0);
  append64(s, 0);
  spit(path_, s);
  EXPECT_THROW((void)read_trace_binary(path_), std::runtime_error);
}

TEST_F(TraceIoTest, PathComponentTokenOutOfRangeThrows) {
  std::string s = v2_prefix();
  append32(s, 0);     // no tokens...
  append32(s, 1);     // ...but one path
  s.push_back(1);     // with one component
  append32(s, 5);     // referencing token 5
  append32(s, 0);     // files
  append64(s, 0);     // records
  spit(path_, s);
  EXPECT_THROW((void)read_trace_binary(path_), std::runtime_error);
}

TEST_F(TraceIoTest, FileMetaPathOutOfRangeThrows) {
  std::string s = v2_prefix();
  append32(s, 0);  // tokens
  append32(s, 0);  // paths
  append32(s, 1);  // one file
  append32(s, 3);  // whose path id indexes an empty path table
  append32(s, 0xFFFFFFFFu);  // dev: invalid is allowed
  append32(s, 0xFFFFFFFFu);  // fid: invalid is allowed
  append32(s, 0);            // group
  append32(s, 0);            // size
  s.push_back(0);            // read_only
  append64(s, 0);            // records
  spit(path_, s);
  EXPECT_THROW((void)read_trace_binary(path_), std::runtime_error);
}

TEST_F(TraceIoTest, RecordFileIdOutOfRangeThrows) {
  std::string s = v2_prefix();
  append32(s, 0);  // tokens
  append32(s, 0);  // paths
  append32(s, 0);  // files
  append64(s, 1);  // one record...
  s.append(kTraceRecordBytes, '\0');  // ...whose file id 0 has no meta
  spit(path_, s);
  EXPECT_THROW((void)read_trace_binary(path_), std::runtime_error);
}

// --------------------------------------------------- v3 corruption fuzz --

/// Small handcrafted trace: a few hundred bytes, so the fuzz below can
/// afford every truncation length and every byte flip.
Trace tiny_fuzz_trace() {
  Trace t;
  t.name = "fuzz";
  t.kind = TraceKind::kCustom;
  t.has_paths = true;
  t.dict = std::make_shared<TraceDictionary>();
  TraceDictionary& d = *t.dict;
  const TokenId user = d.tokens.intern("alice");
  const TokenId dev = d.tokens.intern("dev0");
  SmallVector<TokenId, 8> comps;
  comps.push_back(d.tokens.intern("home"));
  comps.push_back(user);
  const PathId p = d.add_path(std::move(comps));
  for (std::uint32_t f = 0; f < 3; ++f) {
    FileMeta m;
    m.path = p;
    m.dev = dev;
    m.fid = d.tokens.intern("fid" + std::to_string(f));
    d.files.push_back(m);
  }
  for (std::uint32_t i = 0; i < 10; ++i) {
    TraceRecord r;
    r.timestamp = i;
    r.file = FileId(i % 3);
    r.path = p;
    r.user_token = user;
    r.dev_token = dev;
    t.records.push_back(r);
  }
  return t;
}

/// Acceptance criterion: every truncation of a v3 trace throws — none
/// crash, none allocate beyond the file size. Truncations shorter than the
/// header die on the size check; longer ones on the whole-file checksum
/// (the header's file_size no longer matches the bytes on disk).
TEST_F(TraceIoTest, TruncationAtEveryLengthThrows) {
  write_trace_binary(tiny_fuzz_trace(), path_);
  const std::string bytes = slurp(path_);
  ASSERT_GT(bytes.size(), kTraceV3HeaderBytes);
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    spit(path_, std::string_view(bytes).substr(0, len));
    EXPECT_THROW((void)TraceReader(path_), std::runtime_error)
        << "truncated to " << len << " bytes";
  }
}

/// Every single-byte flip must throw: header flips hit the explicit
/// consistency checks, payload flips hit the checksum, and a flip of the
/// stored checksum itself mismatches the recomputed one.
TEST_F(TraceIoTest, ByteFlipAtEveryOffsetThrows) {
  write_trace_binary(tiny_fuzz_trace(), path_);
  const std::string bytes = slurp(path_);
  for (std::size_t off = 0; off < bytes.size(); ++off) {
    std::string corrupt = bytes;
    corrupt[off] = static_cast<char>(corrupt[off] ^ 0xFF);
    spit(path_, corrupt);
    EXPECT_THROW((void)TraceReader(path_), std::runtime_error)
        << "flipped byte at offset " << off;
  }
}

// ------------------------------------------------------ streamed pipeline --

class StreamedPipelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  StreamedTraceSpec two_tenant_spec(std::size_t rounds = 1) const {
    StreamedTraceSpec spec;
    spec.tenants = {TraceKind::kHP, TraceKind::kINS};
    spec.seed = 42;
    spec.scale = 0.02;
    spec.rounds = rounds;
    return spec;
  }

  // Per-process unique for the same reason as TraceIoTest::path_.
  std::string dir_ = ::testing::TempDir() + "farmer_streamed_test_" +
                     std::to_string(::getpid());
};

/// The tentpole differential, in its strongest form: streamed generation
/// plus external k-way merge produces a v3 file that is *byte-identical*
/// to writing make_multi_tenant_trace's in-memory result — same records in
/// the same order, same dictionary, same name, same header.
TEST_F(StreamedPipelineTest, MergedFileIsByteIdenticalToInMemoryTrace) {
  const MultiTenantTrace mem = tiny_multi_tenant();
  const StreamedMultiTenantTrace streamed =
      stream_multi_tenant_trace(two_tenant_spec(), dir_);
  EXPECT_EQ(streamed.name, mem.trace.name);
  EXPECT_EQ(streamed.file_begin, mem.file_begin);
  EXPECT_EQ(streamed.has_paths, mem.trace.has_paths);
  ASSERT_EQ(streamed.records_written, mem.trace.records.size());

  const std::string merged_path = dir_ + "/merged.ftrace";
  const std::uint64_t merged =
      merge_trace_streams(streamed.part_paths, merged_path, streamed.name);
  EXPECT_EQ(merged, streamed.records_written);

  const std::string mem_path = dir_ + "/in_memory.ftrace";
  write_trace_binary(mem.trace, mem_path);
  EXPECT_EQ(slurp(merged_path), slurp(mem_path));
}

/// The acceptance-criteria phrasing of the same differential: feeding the
/// mmap'd merged stream to a miner yields a byte-identical model to feeding
/// the in-memory trace (persist::serialize_shard is the canonical full
/// serialization of a shard's state).
TEST_F(StreamedPipelineTest, ReplayedModelIsByteIdenticalToInMemoryIngest) {
  const MultiTenantTrace mem = tiny_multi_tenant();
  const StreamedMultiTenantTrace streamed =
      stream_multi_tenant_trace(two_tenant_spec(), dir_);
  const std::string merged_path = dir_ + "/merged.ftrace";
  (void)merge_trace_streams(streamed.part_paths, merged_path, streamed.name);

  FarmerConfig cfg;
  cfg.attributes = mem.trace.has_paths ? AttributeMask::all_with_path()
                                       : AttributeMask::all_with_fileid();
  Farmer in_memory(cfg, mem.trace.dict);
  in_memory.observe_batch(mem.trace.records);

  const TraceReader reader(merged_path);
  Farmer replayed(cfg, reader.dict());
  replayed.observe_batch(reader.records());

  EXPECT_EQ(persist::serialize_shard(in_memory),
            persist::serialize_shard(replayed));
}

TEST_F(StreamedPipelineTest, ReaderExposesTraceFacts) {
  const StreamedMultiTenantTrace streamed =
      stream_multi_tenant_trace(two_tenant_spec(), dir_);
  const std::string merged_path = dir_ + "/merged.ftrace";
  (void)merge_trace_streams(streamed.part_paths, merged_path, streamed.name);
  const TraceReader reader(merged_path);
  EXPECT_EQ(reader.name(), streamed.name);
  EXPECT_EQ(reader.kind(), TraceKind::kCustom);  // kHP + kINS mix
  EXPECT_EQ(reader.has_paths(), streamed.has_paths);
  EXPECT_EQ(reader.records().size(), streamed.records_written);
  const Trace t = reader.materialize();
  EXPECT_EQ(t.records.size(), streamed.records_written);
  EXPECT_EQ(t.file_count(), streamed.file_begin.back());
}

TEST_F(StreamedPipelineTest, MultiRoundScalesVolumeAndStaysSorted) {
  const StreamedMultiTenantTrace one =
      stream_multi_tenant_trace(two_tenant_spec(1), dir_);
  const std::string one_merged = dir_ + "/merged1.ftrace";
  (void)merge_trace_streams(one.part_paths, one_merged, one.name);

  const StreamedMultiTenantTrace three =
      stream_multi_tenant_trace(two_tenant_spec(3), dir_);
  EXPECT_GT(three.records_written, 2 * one.records_written);

  const std::string merged_path = dir_ + "/merged3.ftrace";
  (void)merge_trace_streams(three.part_paths, merged_path, three.name);
  const TraceReader reader(merged_path);
  ASSERT_EQ(reader.records().size(), three.records_written);
  SimTime prev = 0;
  for (const TraceRecord& r : reader.records()) {
    EXPECT_LE(prev, r.timestamp);
    prev = r.timestamp;
    ASSERT_LT(r.file.value(), three.file_begin.back());
  }
}

TEST_F(StreamedPipelineTest, MergeRejectsMismatchedDictionaries) {
  const std::string a = dir_ + "/a.ftrace";
  const std::string b = dir_ + "/b.ftrace";
  write_trace_binary(generate_trace(tiny_hp(), 1), a);
  write_trace_binary(generate_trace(tiny_hp(), 2), b);
  const std::vector<std::string> inputs = {a, b};
  EXPECT_THROW((void)merge_trace_streams(inputs, dir_ + "/out.ftrace", "x"),
               std::runtime_error);
}

TEST_F(StreamedPipelineTest, MergeRejectsEmptyInputs) {
  EXPECT_THROW((void)merge_trace_streams({}, dir_ + "/out.ftrace", "x"),
               std::invalid_argument);
}

}  // namespace
}  // namespace farmer
