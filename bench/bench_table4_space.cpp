// Table 4 — FARMER's additional memory footprint per trace at
// max_strength = 0.4.
//
// Paper expectation: footprints stay modest (<100 MB) with the ordering
// LLNL (98.4 MB) >> HP (9.8) > RES (2.5) > INS (1.4): the footprint tracks
// the namespace size, and the validity threshold keeps Correlator Lists
// short.
#include "bench_util.hpp"

int main() {
  using namespace farmer;
  using namespace farmer::bench;

  print_experiment_header(
      std::cout, "Table 4",
      "FARMER space overhead after mining each full trace "
      "(max_strength = 0.4)",
      "ordering LLNL >> HP > RES > INS; every value well under 100 MB "
      "(paper: 98.4 / 9.8 / 2.5 / 1.4 MB)");

  Table table({"trace", "files", "events", "footprint (measured)",
               "paper (full-size trace)", "bytes/file"});
  const char* paper_values[] = {"98.4 MB", "1.4 MB", "2.5 MB", "9.8 MB"};
  std::size_t i = 0;
  for (const TraceKind kind : kAllKinds) {
    const Trace& trace = paper_trace(kind);
    auto fpa = make_fpa(trace);
    for (const auto& rec : trace.records) fpa.observe(rec);
    fpa.flush();  // ingest barrier; no-op for synchronous backends
    const std::size_t bytes = fpa.footprint_bytes();
    table.add_row(
        {trace_kind_name(kind), std::to_string(trace.file_count()),
         std::to_string(trace.event_count()), fmt_bytes(bytes),
         paper_values[i++],
         fmt_double(static_cast<double>(bytes) /
                        static_cast<double>(trace.file_count()),
                    1)});
  }
  table.print(std::cout);
  std::cout << "\nNote: absolute sizes scale with the synthetic trace "
               "volume (" << fmt_double(bench::bench_scale(), 2)
            << "x of the generator's full size); the ordering and the "
               "bytes-per-file density are the reproducible shape.\n";
  return 0;
}
