// Figure 1 — probabilities of inter-file access for different attribute
// combinations on the four traces.
//
// Paper expectation: (1) the same attribute yields different probabilities
// on different traces; (2) within a trace, different attributes yield
// different probabilities; (3) the unfiltered stream ("none") is lowest
// everywhere.
#include "analysis/interfile_prob.hpp"
#include "bench_util.hpp"

int main() {
  using namespace farmer;
  using namespace farmer::bench;

  print_experiment_header(
      std::cout, "Figure 1",
      "inter-file access probability by attribute filter, per trace",
      "'none' lowest in every trace; probabilities differ across traces "
      "and across attributes (paper: RES pid 37.6%, HP pid 52.7%, "
      "HP path 55.2% > HP uid 45.8%)");

  for (const TraceKind kind : kAllKinds) {
    const Trace& trace = paper_trace(kind);
    const auto rows = interfile_access_probability(
        trace, figure1_combinations(trace.has_paths));
    Table table({"filter", "probability", "transitions"});
    for (const auto& r : rows)
      table.add_row({r.label, pct(r.probability, 1),
                     std::to_string(r.transitions)});
    std::cout << "\n" << trace_kind_name(kind) << " ("
              << trace.event_count() << " events):\n";
    table.print(std::cout);
  }
  return 0;
}
