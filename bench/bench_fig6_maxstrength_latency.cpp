// Figure 6 — impact of max_strength on average response time (HP trace,
// DES replay of the MDS).
//
// Paper expectation: response time roughly stable for max_strength < 0.4
// and degrading beyond it (too-conservative prefetching stops helping);
// millisecond scale.
#include <vector>

#include "bench_util.hpp"
#include "common/parallel.hpp"
#include "storage/cluster.hpp"

int main() {
  using namespace farmer;
  using namespace farmer::bench;

  print_experiment_header(
      std::cout, "Figure 6",
      "average MDS response time vs max_strength (HP trace, DES)",
      "stable plateau below ~0.4, rising toward 1.0 as prefetching turns "
      "off; ~1-1.8 ms band in the paper");

  const Trace& trace = paper_trace(TraceKind::kHP);
  const std::vector<double> strengths = {0.0, 0.1, 0.2, 0.3, 0.4, 0.5,
                                         0.6, 0.7, 0.8, 0.9, 1.0};
  struct Cell {
    double strength;
    double mean_ms = 0, p95_ms = 0;
    std::uint64_t batches = 0;
  };
  std::vector<Cell> cells;
  for (const double s : strengths) cells.push_back({s});

  parallel_for(cells.size(), [&](std::size_t i) {
    FarmerConfig cfg = fpa_config(trace);
    cfg.max_strength = cells[i].strength;
    auto fpa = make_fpa(trace, cfg);
    ClusterConfig cc;
    cc.mds.cache_capacity = default_cache_capacity(trace);
    cc.mds.prefetch_degree = kDefaultPrefetchDegree;
    cc.mds.disk_servers = 2;  // MDS with BDB page cache + two spindles
    const auto m = run_cluster(trace, fpa, cc);
    cells[i].mean_ms = m.mean_response_ms();
    cells[i].p95_ms = static_cast<double>(m.response.p95()) / 1000.0;
    cells[i].batches = m.prefetch_batches;
  });

  Table table({"max_strength", "mean RT (ms)", "p95 RT (ms)",
               "prefetch batches"});
  for (const Cell& c : cells)
    table.add_row({fmt_double(c.strength, 1), fmt_double(c.mean_ms, 3),
                   fmt_double(c.p95_ms, 3), std::to_string(c.batches)});
  table.print(std::cout);
  return 0;
}
