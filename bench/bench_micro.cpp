// Micro-benchmarks (google-benchmark): the per-operation costs behind
// FARMER's "reasonable overhead" claim — similarity evaluation, graph
// updates, full pipeline ingest, predictor prediction, cache and B+tree
// operations.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/zipf.hpp"
#include "cache/metadata_cache.hpp"
#include "core/cominer.hpp"
#include "core/extractor.hpp"
#include "core/farmer.hpp"
#include "kvstore/btree.hpp"
#include "vsm/similarity.hpp"

namespace {

using namespace farmer;
using namespace farmer::bench;

const Trace& hp() { return paper_trace(TraceKind::kHP); }

void BM_SimilarityIPA(benchmark::State& state) {
  Interner in;
  SemanticVector a, b;
  a.user = in.intern("user1");
  a.process = in.intern("p1");
  a.host = in.intern("host1");
  intern_path_components("/home/user1/paper/a", in, a.path_components);
  b.user = in.intern("user1");
  b.process = in.intern("p2");
  b.host = in.intern("host1");
  intern_path_components("/home/user1/paper/b", in, b.path_components);
  const auto mask = AttributeMask::all_with_path();
  const Signature sa = build_signature(a, mask, PathMode::kIntegrated);
  const Signature sb = build_signature(b, mask, PathMode::kIntegrated);
  for (auto _ : state) {
    benchmark::DoNotOptimize(similarity(sa, sb));
  }
}
BENCHMARK(BM_SimilarityIPA);

void BM_MultisetIntersection(benchmark::State& state) {
  // Args = {|a|, |b|}: comparable sizes take the branch-light linear merge,
  // skewed pairs (|b| >= 16 * |a|) take the galloping path.
  const auto na = static_cast<std::size_t>(state.range(0));
  const auto nb = static_cast<std::size_t>(state.range(1));
  Rng rng(42);
  std::vector<TokenId> a, b;
  a.reserve(na);
  b.reserve(nb);
  for (std::size_t i = 0; i < na; ++i)
    a.emplace_back(static_cast<std::uint32_t>(rng.next_below(1u << 16)));
  for (std::size_t i = 0; i < nb; ++i)
    b.emplace_back(static_cast<std::uint32_t>(rng.next_below(1u << 16)));
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        multiset_intersection(a.data(), a.size(), b.data(), b.size()));
  }
}
BENCHMARK(BM_MultisetIntersection)
    ->Args({8, 8})      // typical signature-vs-signature sizes: linear merge
    ->Args({12, 256})   // just past the skew threshold: gallop
    ->Args({8, 4096});  // heavily skewed: gallop saves almost every compare

void BM_BuildSignature(benchmark::State& state) {
  Interner in;
  SemanticVector a;
  a.user = in.intern("user1");
  a.process = in.intern("p1");
  a.host = in.intern("host1");
  intern_path_components("/home/user1/paper/deep/dir/tree/a", in,
                         a.path_components);
  const auto mask = AttributeMask::all_with_path();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        build_signature(a, mask, PathMode::kIntegrated));
  }
}
BENCHMARK(BM_BuildSignature);

void BM_EvaluatePair(benchmark::State& state) {
  // Stage 3 steady state: one R(x, y) evaluation including the
  // Correlator-List upsert, on signatures extracted from real HP-trace
  // records.
  const Trace& trace = hp();
  const FarmerConfig cfg = fpa_config(trace);
  CorrelationGraph g({cfg.max_successors, cfg.correlator_capacity});
  CoMiner miner(cfg, g);
  const Extractor ex(trace.dict);
  const TraceRecord& ra = trace.records[0];
  std::size_t j = 1;
  while (j < trace.records.size() && trace.records[j].file == ra.file) ++j;
  const TraceRecord& rb = trace.records[j % trace.records.size()];
  SemanticVector va, vb;
  ex.extract(ra, va);
  ex.extract(rb, vb);
  const Signature sa = build_signature(va, cfg.attributes, cfg.path_mode);
  const Signature sb = build_signature(vb, cfg.attributes, cfg.path_mode);
  g.record_access(ra.file);
  g.record_access(rb.file);
  g.add_transition(ra.file, rb.file, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(miner.evaluate_pair(ra.file, sa, rb.file, sb));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_EvaluatePair);

void BM_GraphTransition(benchmark::State& state) {
  CorrelationGraph g;
  Rng rng(1);
  std::uint32_t i = 0;
  for (auto _ : state) {
    const FileId pred(i % 4096);
    const FileId succ(static_cast<std::uint32_t>(rng.next_below(4096)));
    g.record_access(pred);
    benchmark::DoNotOptimize(g.add_transition(pred, succ, 1.0));
    ++i;
  }
}
BENCHMARK(BM_GraphTransition);

void BM_FarmerObserve(benchmark::State& state) {
  // Backend comes from the factory (FARMER_MINER), so the same binary
  // measures serial, sharded, and nexus ingest.
  const Trace& trace = hp();
  const auto model = make_bench_miner(trace, fpa_config(trace));
  std::size_t i = 0;
  for (auto _ : state) {
    model->observe(trace.records[i % trace.records.size()]);
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_FarmerObserve);

void BM_ObserveKernel(benchmark::State& state) {
  // The serial observe kernel in isolation: a plain Farmer (no factory, no
  // sharding, no queues) replaying the HP trace. This is the records/s
  // number the ingest-kernel optimizations (invariant hoisting, order
  // repair, signature memoization) move directly.
  const Trace& trace = hp();
  Farmer model(fpa_config(trace), trace.dict);
  std::size_t i = 0;
  for (auto _ : state) {
    model.observe(trace.records[i % trace.records.size()]);
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ObserveKernel);

void BM_ConcurrentIngest(benchmark::State& state) {
  // Multi-threaded trace-replay driver: Arg = producer threads pushing
  // process-partitioned streams into the async "concurrent" backend.
  // Throughput (items/s) is ingest records/s including the final flush().
  const Trace& trace = hp();
  const auto producers = static_cast<std::size_t>(state.range(0));
  const auto parts = partition_by_process(trace, producers);
  for (auto _ : state) {
    MinerOptions opts;
    opts.ingest_threads = producers;
    const auto miner =
        make_miner("concurrent", fpa_config(trace), trace.dict, opts);
    concurrent_replay(*miner, parts);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(trace.records.size()));
  state.counters["producers"] = static_cast<double>(producers);
}
BENCHMARK(BM_ConcurrentIngest)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_SnapshotUnderIngest(benchmark::State& state) {
  // Mixed ingest + query: every benchmark thread is a reader issuing
  // snapshot() on Zipf-hot files while one background producer replays the
  // trace in a loop, so the drain keeps publishing fresh shard tables the
  // whole time. Measures the RCU read path under churn; Arg(0) is the
  // Correlator-List cache capacity (0 = disabled). Readers scaling with
  // ->Threads() is the "no reader contention" claim made measurable.
  struct Shared {
    std::unique_ptr<CorrelationMiner> miner;
    std::atomic<bool> stop{false};
    std::thread producer;
  };
  static Shared* shared = nullptr;
  const Trace& trace = hp();
  if (state.thread_index() == 0) {
    MinerOptions opts;
    opts.query_cache_capacity = static_cast<std::size_t>(state.range(0));
    shared = new Shared;
    shared->miner =
        make_miner("concurrent", fpa_config(trace), trace.dict, opts);
    shared->miner->observe_batch(trace.records);  // warm state
    shared->miner->flush();
    shared->producer = std::thread([s = shared, &trace] {
      constexpr std::size_t kChunk = 256;
      std::size_t i = 0;
      while (!s->stop.load(std::memory_order_acquire)) {
        const std::size_t n =
            std::min(kChunk, trace.records.size() - i);
        s->miner->observe_batch(
            std::span<const TraceRecord>(&trace.records[i], n));
        i = (i + n) % trace.records.size();
      }
    });
  }
  // google-benchmark's start barrier guarantees thread 0's setup above
  // completed before any thread enters this loop.
  Rng rng(0xBEEF + static_cast<std::uint64_t>(state.thread_index()));
  const ZipfRejection zipf(trace.dict->files.size(), 1.1);
  for (auto _ : state) {
    const FileId f(static_cast<std::uint32_t>(zipf.sample(rng)));
    benchmark::DoNotOptimize(shared->miner->snapshot(f).size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  if (state.thread_index() == 0) {
    shared->stop.store(true, std::memory_order_release);
    shared->producer.join();
    const MinerStats s = shared->miner->stats();
    state.counters["cache_hits"] = static_cast<double>(s.cache_hits);
    state.counters["cache_misses"] = static_cast<double>(s.cache_misses);
    delete shared;
    shared = nullptr;
  }
}
BENCHMARK(BM_SnapshotUnderIngest)
    ->Arg(0)      // RCU only
    ->Arg(4096)   // RCU + correlator cache
    ->Threads(1)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime();

void BM_FpaPredict(benchmark::State& state) {
  const Trace& trace = hp();
  auto fpa = make_fpa(trace);
  for (const auto& r : trace.records) fpa.observe(r);
  fpa.flush();  // ingest barrier; no-op for synchronous backends
  std::size_t i = 0;
  PredictionList out;
  for (auto _ : state) {
    out.clear();
    fpa.predict(trace.records[i % trace.records.size()], 4, out);
    benchmark::DoNotOptimize(out.size());
    ++i;
  }
}
BENCHMARK(BM_FpaPredict);

void BM_NexusObserve(benchmark::State& state) {
  const Trace& trace = hp();
  NexusPredictor nexus;
  std::size_t i = 0;
  for (auto _ : state) {
    nexus.observe(trace.records[i % trace.records.size()]);
    ++i;
  }
}
BENCHMARK(BM_NexusObserve);

void BM_CacheAccess(benchmark::State& state) {
  MetadataCache cache(4096, CachePolicy::kLRU);
  Rng rng(7);
  for (auto _ : state) {
    const FileId f(static_cast<std::uint32_t>(rng.next_below(8192)));
    if (!cache.access(f)) cache.insert_demand(f);
  }
}
BENCHMARK(BM_CacheAccess);

void BM_BTreeGet(benchmark::State& state) {
  BTreeStore t;
  for (std::uint64_t k = 0; k < 100000; ++k) t.put(k, "metadata-blob");
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(t.get(rng.next_below(100000)));
  }
}
BENCHMARK(BM_BTreeGet);

void BM_BTreePut(benchmark::State& state) {
  BTreeStore t;
  std::uint64_t k = 0;
  for (auto _ : state) {
    t.put(k++, "metadata-blob");
  }
}
BENCHMARK(BM_BTreePut);

void BM_EndToEndReplay(benchmark::State& state) {
  // Whole-pipeline throughput: events per second through FPA + cache.
  const Trace& trace = hp();
  for (auto _ : state) {
    auto fpa = make_fpa(trace);
    const auto r = replay_trace(trace, fpa, replay_config(trace));
    benchmark::DoNotOptimize(r.hit_ratio());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(trace.event_count()));
}
BENCHMARK(BM_EndToEndReplay)->Unit(benchmark::kMillisecond);

}  // namespace

// BENCHMARK_MAIN() plus one convenience: `--json` is the cross-bench flag
// the baseline tooling (scripts/bench_to_json.py, CI bench-smoke) passes to
// every bench binary; here it maps onto google-benchmark's native
// --benchmark_format=json.
int main(int argc, char** argv) {
  std::vector<char*> args;
  static char json_flag[] = "--benchmark_format=json";
  args.reserve(static_cast<std::size_t>(argc) + 1);
  for (int i = 0; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--json") {
      args.push_back(json_flag);
      continue;
    }
    args.push_back(argv[i]);
  }
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
