// Closed-loop serving scenarios (src/serve/): a trace drives a live MDS
// whose predictor is selected at runtime (FARMER_PREDICTOR through the
// PredictorFactory, mining backend through FARMER_MINER), and every
// scenario reports both run totals and the per-window time series.
//
//   bench_serving                       all built-in scenarios, summary table
//   bench_serving --scenario NAME       one scenario + its per-window rows
//   bench_serving --list-scenarios      registered scenario names
//   bench_serving --json                machine-readable (bench_to_json.py)
//
// FARMER_SCENARIO picks the scenario without a flag; FARMER_SERVE_WINDOWS
// and FARMER_SERVE_CACHE override the spec's reporting windows and MDS
// cache capacity. The trace volume follows FARMER_BENCH_SCALE like every
// other bench (scenario scales are tuned for the default 0.25).
#include <algorithm>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "serve/harness.hpp"
#include "serve/scenario.hpp"

namespace {

using namespace farmer;
using namespace farmer::bench;

std::string ratio4(double r) { return fmt_double(r, 4); }

ScenarioSpec spec_for(const std::string& name) {
  ScenarioSpec spec = scenario_spec(name);
  // Scenario scales are tuned for the default bench scale; FARMER_BENCH_SCALE
  // shrinks or grows them proportionally (CI smoke runs tiny).
  spec.scale = std::min(1.0, spec.scale * bench_scale() / 0.25);
  if (runtime().serve_windows) spec.windows = runtime().serve_windows;
  if (runtime().serve_cache) spec.cache_capacity = runtime().serve_cache;
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  std::string only;
  bool list = false;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--list-scenarios") {
      list = true;
    } else if (arg == "--scenario" && i + 1 < argc) {
      only = argv[++i];
    } else if (arg != "--json") {
      std::cerr << "usage: bench_serving [--scenario NAME] "
                   "[--list-scenarios] [--json]\n";
      return 2;
    }
  }
  if (list) {
    for (const std::string& name : registered_scenarios()) {
      const ScenarioSpec s = scenario_spec(name);
      std::cout << name << "  " << s.description << "\n";
    }
    return 0;
  }
  const bool json = json_output_requested(argc, argv);
  if (only.empty()) only = runtime().scenario;

  const std::vector<std::string> names =
      only.empty() ? registered_scenarios() : std::vector<std::string>{only};
  const std::string& predictor = runtime().predictor;

  if (!json)
    print_experiment_header(
        std::cout, "Serving scenarios",
        "closed-loop trace replay against a live MDS: the " + predictor +
            " predictor learns in the loop while the cache and two-priority "
            "disk queue score its prefetches",
        "hit ratio, prefetch precision and response percentiles react to "
        "the scenario's load shape; ingest lag stays bounded");

  Table summary({"scenario", "predictor", "requests", "demand_hit_ratio",
                 "prefetch_precision", "prefetch_waste", "p50_response_us",
                 "p99_response_us", "mean_ingest_lag", "windows"});
  Table windows_tbl({"window", "end_us", "requests", "hit_ratio",
                     "prefetch_precision", "p50_us", "p99_us", "ingest_lag",
                     "epoch", "footprint_bytes", "invalidations"});

  for (const std::string& name : names) {
    ServingResult res;
    try {
      res = run_scenario(spec_for(name), predictor,
                         runtime().predictor_options);
    } catch (const std::invalid_argument& e) {
      std::cerr << e.what() << "\n";
      return 2;
    }
    double lag_sum = 0.0;
    for (const WindowStats& w : res.windows)
      lag_sum += static_cast<double>(w.ingest_pending);
    const double mean_lag =
        res.windows.empty()
            ? 0.0
            : lag_sum / static_cast<double>(res.windows.size());
    const CacheStats& c = res.cache;
    const double precision =
        c.prefetch_inserted ? static_cast<double>(c.prefetch_used) /
                                  static_cast<double>(c.prefetch_inserted)
                            : 0.0;
    summary.add_row({res.scenario, res.predictor,
                     std::to_string(res.requests),
                     ratio4(res.demand_hit_ratio()), ratio4(precision),
                     ratio4(c.pollution_ratio()),
                     std::to_string(res.response.p50()),
                     std::to_string(res.response.p99()),
                     fmt_double(mean_lag, 1),
                     std::to_string(res.windows.size())});
    if (names.size() == 1) {
      for (const WindowStats& w : res.windows)
        windows_tbl.add_row(
            {std::to_string(w.index), std::to_string(w.end_us),
             std::to_string(w.demand_requests), ratio4(w.hit_ratio()),
             ratio4(w.prefetch_precision()),
             std::to_string(w.p50_response_us),
             std::to_string(w.p99_response_us),
             std::to_string(w.ingest_pending),
             std::to_string(w.ingest_epoch),
             std::to_string(w.model_footprint_bytes),
             std::to_string(w.invalidations)});
    }
  }

  if (json) {
    std::cout << "{\"bench\": \"bench_serving\", \"scale\": " << bench_scale()
              << ", \"predictor\": " << json_quote(predictor)
              << ", \"tables\": [";
    summary.print_json(std::cout, "serving");
    if (names.size() == 1) {
      std::cout << ", ";
      windows_tbl.print_json(std::cout, "serving_windows");
    }
    std::cout << "]}\n";
    return 0;
  }

  summary.print(std::cout);
  if (names.size() == 1) {
    std::cout << "\nPer-window time series (" << names.front() << "):\n\n";
    windows_tbl.print(std::cout);
  }
  return 0;
}
