// Ablations of the design decisions DESIGN.md calls out:
//   1. LDA vs uniform window weighting (Section 3.2.2)
//   2. IPA vs DPA end-to-end (Section 3.2.1)
//   3. validity-threshold filter on/off — accuracy + footprint (3.2.4/3.3)
//   4. MDS priority queues: demand-over-prefetch vs single queue (4.1)
//   5. batched vs individual prefetch I/O (4.2)
#include "bench_util.hpp"
#include "storage/cluster.hpp"

int main() {
  using namespace farmer;
  using namespace farmer::bench;
  const Trace& trace = paper_trace(TraceKind::kHP);
  const ReplayConfig rc = replay_config(trace);

  print_experiment_header(
      std::cout, "Ablation 1",
      "Linear Decremented Assignment vs uniform window weights (HP)",
      "distance decay sharpens successor ranking -> higher accuracy");
  {
    Table t({"window weighting", "hit ratio", "accuracy"});
    for (const bool lda : {true, false}) {
      FarmerConfig cfg = fpa_config(trace);
      cfg.lda_delta = lda ? 0.1 : 0.0;  // 0.0 = every distance weighs 1.0
      auto fpa = make_fpa(trace, cfg);
      const auto r = replay_trace(trace, fpa, rc);
      t.add_row({lda ? "LDA (1.0, 0.9, 0.8, ...)" : "uniform (all 1.0)",
                 pct(r.hit_ratio()), pct(r.prefetch_accuracy())});
    }
    t.print(std::cout);
  }

  print_experiment_header(
      std::cout, "Ablation 2", "IPA vs DPA path handling end-to-end (HP)",
      "paper selects IPA: deep directories must not drown the other "
      "attributes");
  {
    Table t({"path mode", "hit ratio", "accuracy"});
    for (const auto mode : {PathMode::kIntegrated, PathMode::kDivided}) {
      FarmerConfig cfg = fpa_config(trace);
      cfg.path_mode = mode;
      auto fpa = make_fpa(trace, cfg);
      const auto r = replay_trace(trace, fpa, rc);
      t.add_row({mode == PathMode::kIntegrated ? "IPA" : "DPA",
                 pct(r.hit_ratio()), pct(r.prefetch_accuracy())});
    }
    t.print(std::cout);
  }

  print_experiment_header(
      std::cout, "Ablation 3",
      "validity threshold on/off: accuracy, pollution, correlator state",
      "the filter trades a little coverage for accuracy and memory "
      "(Section 3.3)");
  {
    Table t({"max_strength", "hit ratio", "accuracy", "pollution",
             "correlator entries"});
    for (const double s : {0.4, 0.0}) {
      FarmerConfig cfg = fpa_config(trace);
      cfg.max_strength = s;
      auto fpa = make_fpa(trace, cfg);
      const auto r = replay_trace(trace, fpa, rc);
      std::size_t entries = 0;
      for (std::uint32_t f = 0; f < trace.file_count(); ++f)
        entries += fpa.model().snapshot(FileId(f)).size();
      t.add_row({fmt_double(s, 1), pct(r.hit_ratio()),
                 pct(r.prefetch_accuracy()), pct(r.cache.pollution_ratio()),
                 std::to_string(entries)});
    }
    t.print(std::cout);
  }

  print_experiment_header(
      std::cout, "Ablation 4",
      "MDS scheduling: demand-priority queues vs batched-prefetch off (DES)",
      "priority + batching protect demand latency from prefetch traffic");
  {
    Table t({"configuration", "mean RT (ms)", "p95 RT (ms)"});
    for (const bool batch : {true, false}) {
      auto fpa = make_fpa(trace);
      ClusterConfig cc;
      cc.mds.cache_capacity = default_cache_capacity(trace);
      cc.mds.prefetch_degree = kDefaultPrefetchDegree;
    cc.mds.disk_servers = 2;  // MDS with BDB page cache + two spindles
      cc.mds.batch_prefetch = batch;
      const auto m = run_cluster(trace, fpa, cc);
      t.add_row({batch ? "batched group prefetch (one I/O per group)"
                       : "individual prefetch I/Os",
                 fmt_double(m.mean_response_ms(), 3),
                 fmt_double(static_cast<double>(m.response.p95()) / 1000.0,
                            3)});
    }
    t.print(std::cout);
  }

  print_experiment_header(
      std::cout, "Ablation 5",
      "serial vs sharded mining (4 shards, stream-partitioned)",
      "sharding preserves list quality while enabling parallel ingest");
  {
    // Backends come from the factory: the ablation is a string, not a type.
    auto precision = [&](const CorrelationMiner& miner) {
      std::uint64_t intra = 0, total = 0;
      for (std::uint32_t f = 0; f < trace.file_count(); ++f) {
        const auto g = trace.dict->files[f].group;
        if (g == kNoGroup) continue;
        for (const auto& c : miner.snapshot(FileId(f))) {
          ++total;
          if (trace.dict->files[c.file.value()].group == g) ++intra;
        }
      }
      return total ? static_cast<double>(intra) / static_cast<double>(total)
                   : 0.0;
    };
    MinerOptions opts;
    opts.shards = 4;
    Table t({"miner", "ground-truth precision", "footprint"});
    for (const char* backend : {"farmer", "sharded", "concurrent"}) {
      const auto miner =
          make_miner(backend, fpa_config(trace), trace.dict, opts);
      miner->observe_batch(trace.records);
      miner->flush();  // ingest barrier; no-op for the sync backends
      t.add_row({miner->name(), pct(precision(*miner)),
                 fmt_bytes(miner->footprint_bytes())});
    }
    t.print(std::cout);
  }
  return 0;
}
