// Figure 7 — cache hit ratio comparison: FPA vs Nexus vs LRU on all four
// traces.
//
// Paper expectation: FPA highest everywhere; the FPA-vs-Nexus gap is
// largest on HP (~13%, thanks to full path information), 7.8% on INS,
// 3.1% on RES.
#include "bench_util.hpp"

int main() {
  using namespace farmer;
  using namespace farmer::bench;

  print_experiment_header(
      std::cout, "Figure 7",
      "cache hit ratio: FPA vs Nexus vs LRU (no prefetch)",
      "FPA > Nexus > LRU on every trace; biggest FPA-Nexus gap on HP "
      "(paper: +13%), then INS (+7.8%), then RES (+3.1%)");

  Table table({"trace", "FPA", "Nexus", "LRU", "FPA - Nexus",
               "FPA - LRU"});
  for (const TraceKind kind : kAllKinds) {
    const Trace& trace = paper_trace(kind);
    const ReplayConfig rc = replay_config(trace);

    // All three contenders come from the PredictorFactory; "fpa" mines on
    // the environment-selected backend like every other bench.
    const auto fpa = make_bench_predictor(trace, "fpa");
    const auto nexus = make_bench_predictor(trace, "nexus");
    const auto lru = make_bench_predictor(trace, "none");
    const double h_fpa = replay_trace(trace, *fpa, rc).hit_ratio();
    const double h_nexus = replay_trace(trace, *nexus, rc).hit_ratio();
    const double h_lru = replay_trace(trace, *lru, rc).hit_ratio();

    table.add_row({trace_kind_name(kind), pct(h_fpa), pct(h_nexus),
                   pct(h_lru), pct(h_fpa - h_nexus), pct(h_fpa - h_lru)});
  }
  table.print(std::cout);
  return 0;
}
