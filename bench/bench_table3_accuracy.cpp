// Table 3 — prefetching accuracy on the HP trace.
//
// Paper expectation: FARMER 64.04% vs Nexus 43.04% — the validity
// threshold plus semantic filtering roughly halves Nexus's mis-prefetches.
#include "bench_util.hpp"

int main() {
  using namespace farmer;
  using namespace farmer::bench;

  print_experiment_header(
      std::cout, "Table 3",
      "prefetching accuracy on the HP trace",
      "FARMER ~64% vs Nexus ~43%; FARMER clearly ahead");

  const Trace& trace = paper_trace(TraceKind::kHP);
  const ReplayConfig rc = replay_config(trace);

  auto fpa = make_fpa(trace);
  NexusPredictor nexus;
  const auto r_fpa = replay_trace(trace, fpa, rc);
  const auto r_nexus = replay_trace(trace, nexus, rc);

  Table table({"algorithm", "accuracy (measured)", "accuracy (paper)",
               "prefetches issued", "pollution"});
  table.add_row({"FARMER (FPA)", pct(r_fpa.prefetch_accuracy()), "64.04%",
                 std::to_string(r_fpa.cache.prefetch_inserted),
                 pct(r_fpa.cache.pollution_ratio())});
  table.add_row({"Nexus", pct(r_nexus.prefetch_accuracy()), "43.04%",
                 std::to_string(r_nexus.cache.prefetch_inserted),
                 pct(r_nexus.cache.pollution_ratio())});
  table.print(std::cout);

  // Accuracy on the other traces as context (not in the paper's table).
  std::cout << "\naccuracy on the remaining traces (context):\n";
  Table extra({"trace", "FPA", "Nexus"});
  for (const TraceKind kind :
       {TraceKind::kLLNL, TraceKind::kINS, TraceKind::kRES}) {
    const Trace& t = paper_trace(kind);
    const ReplayConfig c = replay_config(t);
    auto f = make_fpa(t);
    NexusPredictor n;
    extra.add_row({trace_kind_name(kind),
                   pct(replay_trace(t, f, c).prefetch_accuracy()),
                   pct(replay_trace(t, n, c).prefetch_accuracy())});
  }
  extra.print(std::cout);
  return 0;
}
