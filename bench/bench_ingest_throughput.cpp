// Ingest throughput under concurrent producers, query latency under mixed
// ingest + multi-reader load, and the copy-on-write publish-cost profile.
//
// FARMER's premise is mining live metadata-server request streams, so the
// numbers that matter at peta-scale are (a) sustained ingest records/s,
// (b) Correlator-List query latency while ingest never stops, and (c) what
// one snapshot publication costs the drain. This bench reports all three:
//
//   1. Pure ingest: the HP trace replayed into the "concurrent" backend
//      from 1/2/4/8 producer threads (records partitioned by process,
//      256-record batches), wall-clock throughput including the final
//      flush(), with the synchronous "sharded" observe_batch() path as the
//      0-producer baseline and a publish-coalescing variant showing fewer
//      table swaps for the same stream.
//   1b. Parallel apply lanes: the same chunked stream through the
//      shard-disjoint worker pool behind observe_batch() at 1/2/4/8 apply
//      lanes (FARMER_APPLY_THREADS), on both the sharded (caller-driven)
//      and concurrent (drain-driven) paths; every row builds the
//      byte-identical model.
//   2. Publish cost vs dirty-set size: a single shard seeded with
//      FARMER_BENCH_FILES files (default 100k), then ingest rounds drawing
//      a Zipf(1.2) hot set. Each round is published twice — once through
//      the COW share export (what the concurrent backend does) and once
//      through the whole-shard deep copy it replaced — so the speedup and
//      the dirty-set scaling are measured side by side on identical state.
//   3. Mixed ingest + N readers: 4 producers replay the trace while N
//      reader threads hammer snapshot() on Zipf-distributed hot files,
//      across the pre-RCU shared_mutex baseline, the RCU shard-table path,
//      RCU + correlator cache, and RCU + coalesced publishes.
//   4. Multi-tenant serving: a merged 2/4-tenant stream
//      (make_multi_tenant_trace) replayed by 4 producers into one shared
//      "concurrent" miner versus the "router" backend with one
//      "concurrent" child per tenant (tenant map aligned to the trace's
//      FileId ranges), with per-tenant request accounting from
//      MinerStats::per_tenant.
//   5. Durable persistence: steady-state ingest with the WAL + checkpoint
//      pipeline enabled vs the no-persist baseline (sharded and concurrent
//      paths), the cost of one full-model checkpoint save, and recovery
//      wall-clock from a checkpoint alone vs a checkpoint plus a WAL tail
//      (~40% of the trace) that must be replayed.
//   6. Disk replay (the out-of-core pipeline): a multi-tenant trace is
//      streamed to per-tenant v3 part files (stream_multi_tenant_trace),
//      externally merged by timestamp (merge_trace_streams), then the
//      merged file is mmap'd and its record span fed to every backend —
//      sharded/concurrent/router, with and without WAL + checkpoints —
//      next to an in-memory sharded baseline over the materialized trace.
//      FARMER_TRACE_DIR / FARMER_TRACE_TENANTS / FARMER_TRACE_ROUNDS size
//      and place the trace (see bench_util.hpp); with FARMER_TRACE_DIR set
//      an existing merged trace is reused and the generate/merge rows are
//      skipped, so a multi-GB trace is built once and replayed many times.
//
// `--json` replaces the human tables with one machine-readable JSON
// document (scripts/bench_to_json.py validates/normalizes it into the
// committed BENCH_ingest.json baseline).
#include "bench_util.hpp"

#include <atomic>
#include <filesystem>
#include <fstream>
#include <shared_mutex>

#include "common/stats.hpp"
#include "common/zipf.hpp"
#include "core/concurrent_farmer.hpp"
#include "trace/trace_stream.hpp"

namespace {

using namespace farmer;
using namespace farmer::bench;

// Writer-priority reader/writer lock for the baseline below. glibc's
// pthread_rwlock (behind std::shared_mutex) is reader-preferring by
// default: the spin-looping reader threads of this bench would starve the
// ingest writers *forever*, which measures a livelock, not a latency
// distribution. Writer priority (new readers wait while a writer waits) is
// the strongest practical variant of the locked design, so beating it is a
// fair win for the RCU path.
class WriterPriorityRwLock {
 public:
  void lock_shared() {
    std::unique_lock<std::mutex> lk(mu_);
    cv_readers_.wait(lk,
                     [&] { return !writer_active_ && waiting_writers_ == 0; });
    ++active_readers_;
  }
  void unlock_shared() {
    std::lock_guard<std::mutex> lk(mu_);
    if (--active_readers_ == 0) cv_writers_.notify_one();
  }
  void lock() {
    std::unique_lock<std::mutex> lk(mu_);
    ++waiting_writers_;
    cv_writers_.wait(lk,
                     [&] { return !writer_active_ && active_readers_ == 0; });
    --waiting_writers_;
    writer_active_ = true;
  }
  void unlock() {
    std::lock_guard<std::mutex> lk(mu_);
    writer_active_ = false;
    if (waiting_writers_ > 0)
      cv_writers_.notify_one();
    else
      cv_readers_.notify_all();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_readers_;
  std::condition_variable cv_writers_;
  int active_readers_ = 0;
  int waiting_writers_ = 0;
  bool writer_active_ = false;
};

// The pre-RCU "concurrent" query path, kept as the measurement baseline:
// one reader/writer lock in front of a ShardedFarmer, write side held for
// whole batch applies, read side taken by every query. This is what the
// RCU shard-table replaced; keeping it runnable makes the regression
// visible in every future run instead of only in PR-3's commit message.
class LockedShardedMiner final : public CorrelationMiner {
 public:
  LockedShardedMiner(const FarmerConfig& cfg,
                     std::shared_ptr<const TraceDictionary> dict,
                     std::size_t shards)
      : inner_(cfg, std::move(dict), shards) {}

  void observe(const TraceRecord& rec) override {
    mu_.lock();
    inner_.observe(rec);
    mu_.unlock();
  }
  void observe_batch(std::span<const TraceRecord> records) override {
    mu_.lock();
    inner_.observe_batch(records);
    mu_.unlock();
  }
  [[nodiscard]] CorrelatorView snapshot(FileId f) const override {
    mu_.lock_shared();
    CorrelatorView view(inner_.correlators(f));
    mu_.unlock_shared();
    return view;
  }
  [[nodiscard]] double correlation_degree(FileId a, FileId b) const override {
    mu_.lock_shared();
    const double d = inner_.correlation_degree(a, b);
    mu_.unlock_shared();
    return d;
  }
  [[nodiscard]] std::uint64_t access_count(FileId f) const override {
    mu_.lock_shared();
    const std::uint64_t n = inner_.access_count(f);
    mu_.unlock_shared();
    return n;
  }
  [[nodiscard]] double access_frequency(FileId pred,
                                        FileId succ) const override {
    mu_.lock_shared();
    const double fr = inner_.access_frequency(pred, succ);
    mu_.unlock_shared();
    return fr;
  }
  [[nodiscard]] MinerStats stats() const override {
    mu_.lock_shared();
    MinerStats s = inner_.stats();
    mu_.unlock_shared();
    return s;
  }
  [[nodiscard]] std::size_t footprint_bytes() const noexcept override {
    return inner_.footprint_bytes();
  }
  [[nodiscard]] const char* name() const noexcept override {
    return "locked-sharded";
  }

 private:
  mutable WriterPriorityRwLock mu_;
  ShardedFarmer inner_;
};

struct MixedResult {
  double ingest_secs = 0.0;
  std::uint64_t queries = 0;
  LatencyHistogram latency_ns;
};

/// 4 producer threads replay `parts` while `readers` threads snapshot()
/// Zipf-hot files as fast as they can; readers stop once ingest (including
/// the final flush) is done. Per-query wall latencies land in a merged
/// nanosecond histogram.
MixedResult mixed_replay(CorrelationMiner& miner,
                         const std::vector<std::vector<TraceRecord>>& parts,
                         std::size_t readers, std::uint32_t file_count) {
  MixedResult out;
  std::atomic<bool> done{false};
  std::vector<LatencyHistogram> lats(readers);
  std::vector<std::thread> reader_threads;
  reader_threads.reserve(readers);
  for (std::size_t r = 0; r < readers; ++r) {
    reader_threads.emplace_back([&, r] {
      Rng rng(0x9000 + r);
      const ZipfRejection zipf(file_count, 1.1);
      std::size_t sink = 0;
      while (!done.load(std::memory_order_acquire)) {
        const FileId f(static_cast<std::uint32_t>(zipf.sample(rng)));
        const auto t0 = std::chrono::steady_clock::now();
        const CorrelatorView view = miner.snapshot(f);
        const auto t1 = std::chrono::steady_clock::now();
        sink += view.size();  // keep the query observable
        lats[r].record(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                .count()));
      }
      // Publish the sink so the compiler cannot drop the loop body.
      volatile std::size_t keep = sink;
      (void)keep;
    });
  }
  out.ingest_secs = concurrent_replay(miner, parts);
  done.store(true, std::memory_order_release);
  for (auto& t : reader_threads) t.join();
  for (const auto& h : lats) out.latency_ns.merge(h);
  out.queries = out.latency_ns.count();
  return out;
}

// ------------------------------------------------- publish-cost workload --

/// A synthetic single-shard workload: `files` files with File-ID attributes
/// (no paths), token pools sized like a small serving cluster. The point is
/// a large node/state table with a small Zipf-hot dirty set per round.
struct PublishWorkload {
  std::shared_ptr<TraceDictionary> dict;
  std::vector<TraceRecord> seed;  ///< one access per file, id order
  TokenId hot_user, hot_proc, hot_host;

  explicit PublishWorkload(std::size_t files) {
    dict = std::make_shared<TraceDictionary>();
    const TokenId dev = dict->tokens.intern("dev0");
    std::vector<TokenId> users, procs, hosts;
    for (int i = 0; i < 8; ++i)
      users.push_back(dict->tokens.intern("user" + std::to_string(i)));
    for (int i = 0; i < 32; ++i)
      procs.push_back(dict->tokens.intern("pid" + std::to_string(i)));
    for (int i = 0; i < 4; ++i)
      hosts.push_back(dict->tokens.intern("host" + std::to_string(i)));
    hot_user = users[0];
    hot_proc = procs[0];
    hot_host = hosts[0];
    dict->files.reserve(files);
    seed.reserve(files);
    for (std::size_t f = 0; f < files; ++f) {
      FileMeta meta;
      meta.dev = dev;
      meta.fid = dict->tokens.intern("fid" + std::to_string(f));
      meta.size_bytes = 4096;
      dict->files.push_back(meta);
      seed.push_back(record_for(FileId(static_cast<std::uint32_t>(f)),
                                users[f % users.size()],
                                procs[f % procs.size()],
                                hosts[f % hosts.size()]));
    }
  }

  [[nodiscard]] TraceRecord record_for(FileId f, TokenId user, TokenId proc,
                                       TokenId host) const {
    TraceRecord r;
    r.file = f;
    r.user = UserId(0);
    r.process = ProcessId(0);
    r.host = HostId(0);
    r.user_token = user;
    r.process_token = proc;
    r.host_token = host;
    r.dev_token = dict->files[f.value()].dev;
    r.fid_token = dict->files[f.value()].fid;
    r.program_token = proc;
    r.size_bytes = 4096;
    return r;
  }

  /// `count` Zipf(skew)-hot records over the file population.
  [[nodiscard]] std::vector<TraceRecord> hot_batch(std::size_t count,
                                                   double skew,
                                                   Rng& rng) const {
    const ZipfRejection zipf(dict->files.size(), skew);
    std::vector<TraceRecord> batch;
    batch.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      const auto f = static_cast<std::uint32_t>(zipf.sample(rng));
      batch.push_back(record_for(FileId(f), hot_user, hot_proc, hot_host));
    }
    return batch;
  }
};

/// Per-publish cost of the COW share export vs the whole-shard deep copy,
/// on identical live state, for one dirty-set size.
struct PublishCostRow {
  std::size_t dirty_records = 0;
  double blocks_cloned_per_round = 0.0;
  double ingest_us = 0.0;
  double cow_publish_us = 0.0;
  double deep_publish_us = 0.0;
};

PublishCostRow measure_publish_cost(Farmer& live, const PublishWorkload& wl,
                                    std::size_t dirty_records,
                                    std::size_t rounds, Rng& rng) {
  PublishCostRow row;
  row.dirty_records = dirty_records;
  const std::uint64_t clones_before = live.cow_clones();
  double cow_ns = 0.0, deep_ns = 0.0, ingest_ns = 0.0;
  // Hold each round's snapshot until the next one exists, like the RCU
  // table does: consecutive publishes share untouched blocks.
  std::shared_ptr<const Farmer> held;
  for (std::size_t r = 0; r < rounds; ++r) {
    const auto batch = wl.hot_batch(dirty_records, /*skew=*/1.2, rng);
    const auto i0 = std::chrono::steady_clock::now();
    live.observe_batch(batch);
    const auto i1 = std::chrono::steady_clock::now();
    ingest_ns += std::chrono::duration<double, std::nano>(i1 - i0).count();

    const auto c0 = std::chrono::steady_clock::now();
    auto snap = std::make_shared<const Farmer>(CowShare{}, live);
    const auto c1 = std::chrono::steady_clock::now();
    cow_ns += std::chrono::duration<double, std::nano>(c1 - c0).count();
    held = std::move(snap);

    // The deep copy the COW export replaced, timed on the same state. Only
    // a few reps: at 100k files one deep copy costs what thousands of COW
    // exports do, and the value barely varies.
    if (r < 3) {
      const auto d0 = std::chrono::steady_clock::now();
      const auto deep = std::make_shared<const Farmer>(live);
      const auto d1 = std::chrono::steady_clock::now();
      deep_ns += std::chrono::duration<double, std::nano>(d1 - d0).count();
    }
  }
  const auto deep_reps = std::min<std::size_t>(rounds, 3);
  row.blocks_cloned_per_round =
      static_cast<double>(live.cow_clones() - clones_before) /
      static_cast<double>(rounds);
  row.ingest_us = ingest_ns / 1e3 / static_cast<double>(rounds);
  row.cow_publish_us = cow_ns / 1e3 / static_cast<double>(rounds);
  row.deep_publish_us =
      deep_reps ? deep_ns / 1e3 / static_cast<double>(deep_reps) : 0.0;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace farmer;
  using namespace farmer::bench;

  const bool json = json_output_requested(argc, argv);
  if (!json)
    print_experiment_header(
        std::cout, "Ingest throughput",
        "concurrent-producer trace replay into the \"concurrent\" backend "
        "(HP trace, 256-record batches, throughput includes flush)",
        "throughput should not collapse as producers grow: enqueue is "
        "lock-free, the drain applies batches through the sharded miner and "
        "publishes copy-on-write snapshots");

  const Trace& trace = paper_trace(TraceKind::kHP);
  const FarmerConfig cfg = fpa_config(trace);
  MinerOptions opts = miner_options();

  Table ingest({"producers", "backend", "records", "seconds", "records/s",
                "publishes"});

  // Baseline: synchronous sharded ingest on the caller's thread.
  {
    const auto sharded = make_miner("sharded", cfg, trace.dict, opts);
    const auto start = std::chrono::steady_clock::now();
    sharded->observe_batch(trace.records);
    const auto end = std::chrono::steady_clock::now();
    const double secs = std::chrono::duration<double>(end - start).count();
    ingest.add_row({"0 (sync)", "sharded",
                    std::to_string(trace.records.size()), fmt_double(secs, 3),
                    fmt_double(static_cast<double>(trace.records.size()) /
                                   secs,
                               0),
                    "-"});
  }

  for (const std::size_t producers : {1u, 2u, 4u, 8u}) {
    opts.ingest_threads = producers;
    const auto miner = make_miner("concurrent", cfg, trace.dict, opts);
    const auto parts = partition_by_process(trace, producers);
    const double secs = concurrent_replay(*miner, parts);
    const MinerStats s = miner->stats();
    ingest.add_row({std::to_string(producers), "concurrent",
                    std::to_string(s.requests), fmt_double(secs, 3),
                    fmt_double(static_cast<double>(s.requests) / secs, 0),
                    std::to_string(s.publishes)});
  }
  // Publish coalescing: same stream, same producers, one table swap per
  // >= 8192 applied records (or the staleness deadline) instead of one per
  // drain round.
  {
    MinerOptions coalesced = opts;
    coalesced.ingest_threads = 4;
    coalesced.publish_interval_records = 8192;
    const auto miner = make_miner("concurrent", cfg, trace.dict, coalesced);
    const auto parts = partition_by_process(trace, 4);
    const double secs = concurrent_replay(*miner, parts);
    const MinerStats s = miner->stats();
    ingest.add_row({"4 (coalesced)", "concurrent",
                    std::to_string(s.requests), fmt_double(secs, 3),
                    fmt_double(static_cast<double>(s.requests) / secs, 0),
                    std::to_string(s.publishes)});
  }
  if (!json) ingest.print(std::cout);

  // ----------------------------------------------- parallel apply lanes --
  // The shard-disjoint apply path by itself: the same chunked stream into
  // "sharded" (caller thread drives observe_batch) and "concurrent" (drain
  // thread hands collected batches to the same apply) at 1/2/4/8 worker
  // lanes. Every row builds the byte-identical model — the lanes only touch
  // disjoint shards — so records/s is the entire difference. 8 shards so
  // each lane count up to 8 owns at least one shard.
  Table parallel_apply({"scenario", "records", "seconds", "records/s"});
  {
    const std::size_t n = trace.records.size();
    const auto chunked_replay = [&](CorrelationMiner& miner) {
      const auto start = std::chrono::steady_clock::now();
      constexpr std::size_t kChunk = 256;
      for (std::size_t i = 0; i < n; i += kChunk) {
        const std::size_t len = std::min(kChunk, n - i);
        miner.observe_batch(
            std::span<const TraceRecord>(&trace.records[i], len));
      }
      miner.flush();
      const auto end = std::chrono::steady_clock::now();
      return std::chrono::duration<double>(end - start).count();
    };
    const auto add_apply_row = [&](const std::string& label, double secs) {
      parallel_apply.add_row({label, std::to_string(n), fmt_double(secs, 3),
                              fmt_double(static_cast<double>(n) / secs, 0)});
    };
    MinerOptions popts = opts;
    popts.shards = 8;
    for (const std::size_t lanes : {1u, 2u, 4u, 8u}) {
      popts.apply_threads = lanes;
      {
        const auto miner = make_miner("sharded", cfg, trace.dict, popts);
        add_apply_row("sharded x" + std::to_string(lanes),
                      chunked_replay(*miner));
      }
      {
        popts.ingest_threads = 2;
        const auto miner = make_miner("concurrent", cfg, trace.dict, popts);
        const auto cparts = partition_by_process(trace, 2);
        add_apply_row("concurrent x" + std::to_string(lanes),
                      concurrent_replay(*miner, cparts));
      }
    }
  }
  if (!json) {
    std::cout << "\nParallel shard-disjoint apply: the same chunked stream "
                 "at 1/2/4/8 apply lanes (FARMER_APPLY_THREADS), sharded "
                 "(caller-driven observe_batch) and concurrent (drain-driven) "
                 "over 8 shards; every row builds the byte-identical "
                 "model:\n\n";
    parallel_apply.print(std::cout);
  }

  // ---------------------------------------------------- publish-cost scan --
  const std::size_t publish_files = runtime().bench_files;
  if (!json)
    std::cout << "\nPer-publish cost, COW share vs whole-shard deep copy ("
              << publish_files << "-file shard, Zipf(1.2) dirty set, "
              << "averages per publish round):\n\n";
  Table publish({"dirty records", "blocks cloned/round", "ingest us",
                 "cow publish us", "deep-copy publish us", "speedup"});
  {
    FarmerConfig pcfg;
    pcfg.attributes = AttributeMask::all_with_fileid();
    const PublishWorkload wl(publish_files);
    Farmer live(pcfg, wl.dict);
    live.observe_batch(wl.seed);
    Rng rng(0xC0117);
    for (const std::size_t dirty : {16u, 256u, 4096u}) {
      const auto row =
          measure_publish_cost(live, wl, dirty, /*rounds=*/8, rng);
      publish.add_row(
          {std::to_string(row.dirty_records),
           fmt_double(row.blocks_cloned_per_round, 0),
           fmt_double(row.ingest_us, 1), fmt_double(row.cow_publish_us, 1),
           fmt_double(row.deep_publish_us, 1),
           fmt_double(row.cow_publish_us > 0.0
                          ? row.deep_publish_us / row.cow_publish_us
                          : 0.0,
                      1) +
               "x"});
    }
  }
  if (!json) publish.print(std::cout);

  // ---------------------------------------------- mixed ingest + readers --
  if (!json)
    std::cout << "\nMixed ingest + N readers (4 producers, Zipf(1.1) hot "
                 "queries, latencies in ns):\n\n";
  constexpr std::size_t kProducers = 4;
  const auto parts = partition_by_process(trace, kProducers);
  const auto file_count =
      static_cast<std::uint32_t>(trace.dict->files.size());

  Table mixed({"query path", "readers", "ingest rec/s", "queries", "q p50",
               "q p95", "q p99", "cache hit%"});
  const auto add_mixed_row = [&](const char* label, std::size_t readers,
                                 const MixedResult& r, double hit_pct,
                                 bool have_hits) {
    mixed.add_row(
        {label, std::to_string(readers),
         fmt_double(static_cast<double>(trace.records.size()) / r.ingest_secs,
                    0),
         std::to_string(r.queries), std::to_string(r.latency_ns.p50()),
         std::to_string(r.latency_ns.p95()),
         std::to_string(r.latency_ns.p99()),
         have_hits ? fmt_double(hit_pct, 1) : std::string("-")});
  };
  for (const std::size_t readers : {4u, 8u}) {
    {
      LockedShardedMiner locked(cfg, trace.dict, opts.shards);
      const MixedResult r = mixed_replay(locked, parts, readers, file_count);
      add_mixed_row("shared_mutex (pre-RCU)", readers, r, 0.0, false);
    }
    {
      MinerOptions rcu = opts;
      rcu.ingest_threads = kProducers;
      rcu.query_cache_capacity = 0;
      rcu.publish_interval_records = 0;
      const auto miner = make_miner("concurrent", cfg, trace.dict, rcu);
      const MixedResult r = mixed_replay(*miner, parts, readers, file_count);
      add_mixed_row("RCU shard-table", readers, r, 0.0, false);
    }
    {
      MinerOptions coal = opts;
      coal.ingest_threads = kProducers;
      coal.query_cache_capacity = 0;
      coal.publish_interval_records = 8192;
      const auto miner = make_miner("concurrent", cfg, trace.dict, coal);
      const MixedResult r = mixed_replay(*miner, parts, readers, file_count);
      add_mixed_row("RCU + coalesced publish", readers, r, 0.0, false);
    }
    {
      MinerOptions cached = opts;
      cached.ingest_threads = kProducers;
      cached.query_cache_capacity = 4096;
      const auto miner = make_miner("concurrent", cfg, trace.dict, cached);
      const MixedResult r = mixed_replay(*miner, parts, readers, file_count);
      const MinerStats s = miner->stats();
      const double hit_pct =
          s.cache_hits + s.cache_misses
              ? 100.0 * static_cast<double>(s.cache_hits) /
                    static_cast<double>(s.cache_hits + s.cache_misses)
              : 0.0;
      add_mixed_row("RCU + correlator cache", readers, r, hit_pct, true);
    }
  }

  // -------------------------------------------------- multi-tenant router --
  // The first column is the row's identity (bench_diff matches rows by it),
  // so it carries both the tenant count and the serving layer.
  Table tenants_tbl({"scenario", "records", "seconds", "records/s",
                     "per-tenant requests"});
  {
    const TraceKind kTenantKinds[] = {TraceKind::kHP, TraceKind::kINS,
                                      TraceKind::kRES, TraceKind::kHP};
    for (const std::size_t ntenants : {2u, 4u}) {
      const std::string nt = std::to_string(ntenants);
      const MultiTenantTrace mt = make_multi_tenant_trace(
          std::span<const TraceKind>(kTenantKinds, ntenants),
          kExperimentSeed, bench_scale());
      const FarmerConfig mcfg = fpa_config(mt.trace);
      const auto mparts = partition_by_process(mt.trace, kProducers);
      {
        MinerOptions shared = opts;
        shared.ingest_threads = kProducers;
        const auto miner = make_miner("concurrent", mcfg, mt.trace.dict,
                                      shared);
        const double secs = concurrent_replay(*miner, mparts);
        const MinerStats s = miner->stats();
        tenants_tbl.add_row(
            {nt + "t / concurrent (shared)", std::to_string(s.requests),
             fmt_double(secs, 3),
             fmt_double(static_cast<double>(s.requests) / secs, 0), "-"});
      }
      {
        MinerOptions ropts = opts;
        ropts.ingest_threads = kProducers;
        ropts.router_tenants = ntenants;
        ropts.router_backends = "concurrent";
        // Align the router's tenant map with the trace's ground-truth
        // FileId ranges (tenants are not equally sized, so the default
        // equal-range split would misroute boundary files).
        ropts.router_tenant_of = mt.tenant_map();
        const auto miner = make_miner("router", mcfg, mt.trace.dict, ropts);
        const double secs = concurrent_replay(*miner, mparts);
        const MinerStats s = miner->stats();
        std::string per_tenant;
        for (const MinerStats& ts : s.per_tenant) {
          if (!per_tenant.empty()) per_tenant += "/";
          per_tenant += std::to_string(ts.requests);
        }
        tenants_tbl.add_row(
            {nt + "t / router (concurrent x" + nt + ")",
             std::to_string(s.requests), fmt_double(secs, 3),
             fmt_double(static_cast<double>(s.requests) / secs, 0),
             per_tenant});
      }
    }
  }

  // ------------------------------------------------------ cluster backend --
  // The message-passing deployment shape priced against its local
  // equivalent: N shard servers behind loopback transports vs one
  // ShardedFarmer with the same partition count. Loopback carries no real
  // network, so the sharded/cluster delta is pure protocol cost (encode +
  // frame + queue hop + decode + ack). The pipeline=1 row awaits every ack
  // before sending the next batch — the gap to the default row is what
  // request pipelining buys.
  Table cluster_tbl({"scenario", "records", "seconds", "records/s"});
  {
    const std::size_t cshards = opts.cluster_shards;
    const std::size_t n = trace.records.size();
    const auto chunked_replay = [&](CorrelationMiner& miner) {
      const auto start = std::chrono::steady_clock::now();
      constexpr std::size_t kChunk = 256;
      for (std::size_t i = 0; i < n; i += kChunk) {
        const std::size_t len = std::min(kChunk, n - i);
        miner.observe_batch(
            std::span<const TraceRecord>(&trace.records[i], len));
      }
      miner.flush();
      const auto end = std::chrono::steady_clock::now();
      return std::chrono::duration<double>(end - start).count();
    };
    const auto add_cluster_row = [&](const std::string& label, double secs) {
      cluster_tbl.add_row({label, std::to_string(n), fmt_double(secs, 3),
                           fmt_double(static_cast<double>(n) / secs, 0)});
    };
    {
      MinerOptions sopts = opts;
      sopts.shards = cshards;
      const auto miner = make_miner("sharded", cfg, trace.dict, sopts);
      add_cluster_row("sharded x" + std::to_string(cshards) + " (local)",
                      chunked_replay(*miner));
    }
    {
      const auto miner = make_miner("cluster", cfg, trace.dict, opts);
      add_cluster_row("cluster x" + std::to_string(cshards) + " (loopback)",
                      chunked_replay(*miner));
    }
    {
      MinerOptions sync = opts;
      sync.cluster_pipeline = 1;
      const auto miner = make_miner("cluster", cfg, trace.dict, sync);
      add_cluster_row(
          "cluster x" + std::to_string(cshards) + " (pipeline=1)",
          chunked_replay(*miner));
    }
  }

  // ------------------------------------------------- durable persistence --
  // The first column is the row's identity for bench_diff. All persist
  // scenarios share one temp tree (cleaned before and after); ingest rows
  // replay the same chunked stream so the WAL + checkpoint overhead is the
  // only difference within a pair.
  Table recovery({"scenario", "records", "seconds", "records/s"});
  {
    namespace fs = std::filesystem;
    const fs::path base = fs::temp_directory_path() / "farmer_bench_persist";
    std::error_code ec;
    fs::remove_all(base, ec);
    fs::create_directories(base);
    const std::size_t n = trace.records.size();
    const auto add_recovery_row = [&](const char* label, double secs) {
      recovery.add_row({label, std::to_string(n), fmt_double(secs, 3),
                        fmt_double(static_cast<double>(n) / secs, 0)});
    };
    // Chunked so the durable path sees realistic batch boundaries (group
    // commits and inline checkpoints both land inside the stream, not once
    // at the end).
    const auto chunked_replay = [&](CorrelationMiner& miner) {
      const auto start = std::chrono::steady_clock::now();
      constexpr std::size_t kChunk = 1024;
      for (std::size_t i = 0; i < n; i += kChunk) {
        const std::size_t len = std::min(kChunk, n - i);
        miner.observe_batch(
            std::span<const TraceRecord>(&trace.records[i], len));
      }
      miner.flush();
      const auto end = std::chrono::steady_clock::now();
      return std::chrono::duration<double>(end - start).count();
    };

    MinerOptions plain = opts;
    plain.ingest_threads = kProducers;

    // Kept alive past its ingest row to price save() on the full model.
    const auto sharded_plain = make_miner("sharded", cfg, trace.dict, plain);
    add_recovery_row("ingest sharded (no persist)",
                     chunked_replay(*sharded_plain));
    {
      MinerOptions durable = plain;
      durable.persist_dir = (base / "sharded").string();
      const auto miner = make_miner("sharded", cfg, trace.dict, durable);
      add_recovery_row("ingest sharded (wal+ckpt)", chunked_replay(*miner));
    }
    {
      const auto miner = make_miner("concurrent", cfg, trace.dict, plain);
      add_recovery_row("ingest concurrent x4 (no persist)",
                       concurrent_replay(*miner, parts));
    }
    {
      MinerOptions durable = plain;
      durable.persist_dir = (base / "concurrent").string();
      const auto miner = make_miner("concurrent", cfg, trace.dict, durable);
      add_recovery_row("ingest concurrent x4 (wal+ckpt)",
                       concurrent_replay(*miner, parts));
    }
    // One explicit full-model checkpoint into a fresh directory.
    const fs::path ckpt_dir = base / "ckpt";
    {
      const auto start = std::chrono::steady_clock::now();
      sharded_plain->save(ckpt_dir.string());
      const auto end = std::chrono::steady_clock::now();
      add_recovery_row("checkpoint save",
                       std::chrono::duration<double>(end - start).count());
    }
    // Recovery from the checkpoint alone: the directory holds no WAL, so
    // this prices deserialization of the full model.
    {
      MinerOptions durable = plain;
      durable.persist_dir = ckpt_dir.string();
      const auto start = std::chrono::steady_clock::now();
      const auto recovered = make_miner("sharded", cfg, trace.dict, durable);
      const auto end = std::chrono::steady_clock::now();
      add_recovery_row("recover (checkpoint only)",
                       std::chrono::duration<double>(end - start).count());
    }
    // Recovery with a WAL tail: checkpoint at ~60% of the trace, so the
    // remaining ~40% must be replayed record by record on open.
    {
      MinerOptions durable = plain;
      durable.persist_dir = (base / "tail").string();
      durable.checkpoint_interval_records = std::max<std::size_t>(
          1, (n * 3) / 5);
      {
        const auto miner = make_miner("sharded", cfg, trace.dict, durable);
        chunked_replay(*miner);
      }
      const auto start = std::chrono::steady_clock::now();
      const auto recovered = make_miner("sharded", cfg, trace.dict, durable);
      const auto end = std::chrono::steady_clock::now();
      add_recovery_row("recover (checkpoint + wal tail)",
                       std::chrono::duration<double>(end - start).count());
    }
    fs::remove_all(base, ec);
  }

  // ------------------------------------------------------------ disk replay --
  // The out-of-core pipeline end to end. Replay rows feed the miner straight
  // from the merged file's mmap'd record span (no Trace materialized); the
  // in-memory row is the same chunked sharded ingest over a materialized
  // Trace, so the pair isolates the cost of reading records off the mapping.
  Table disk_replay({"scenario", "records", "seconds", "records/s"});
  {
    namespace fs = std::filesystem;
    const std::string custom_dir = trace_dir();
    const bool keep = !custom_dir.empty();
    const fs::path dir = keep ? fs::path(custom_dir)
                              : fs::temp_directory_path() /
                                    "farmer_bench_trace";
    std::error_code ec;
    if (!keep) fs::remove_all(dir, ec);
    fs::create_directories(dir);
    const fs::path merged_path = dir / "merged.ftrace";
    const fs::path ranges_path = dir / "file_begin.txt";

    const auto add_replay_row = [&](const std::string& label,
                                    std::uint64_t records, double secs) {
      disk_replay.add_row({label, std::to_string(records),
                           fmt_double(secs, 3),
                           fmt_double(static_cast<double>(records) / secs,
                                      0)});
    };

    // Ground-truth tenant FileId range starts; regenerated with the trace
    // or reloaded from the sidecar when an existing trace is reused (the
    // router row needs them).
    std::vector<std::uint32_t> file_begin;
    if (keep && fs::exists(merged_path) && fs::exists(ranges_path)) {
      std::ifstream rf(ranges_path);
      std::uint32_t v = 0;
      while (rf >> v) file_begin.push_back(v);
      if (file_begin.size() < 2) {
        std::cerr << "corrupt " << ranges_path
                  << ": regenerate the trace directory\n";
        return 2;
      }
    } else {
      static const TraceKind kTenantKinds[] = {TraceKind::kHP,
                                               TraceKind::kINS,
                                               TraceKind::kRES,
                                               TraceKind::kLLNL};
      StreamedTraceSpec spec;
      const std::size_t ntenants = trace_tenants();
      for (std::size_t t = 0; t < ntenants; ++t)
        spec.tenants.push_back(kTenantKinds[t % 4]);
      spec.seed = kExperimentSeed;
      spec.scale = bench_scale();
      spec.rounds = trace_rounds();

      auto t0 = std::chrono::steady_clock::now();
      const StreamedMultiTenantTrace streamed =
          stream_multi_tenant_trace(spec, dir.string());
      auto t1 = std::chrono::steady_clock::now();
      add_replay_row("generate (streamed)", streamed.records_written,
                     std::chrono::duration<double>(t1 - t0).count());

      t0 = std::chrono::steady_clock::now();
      const std::uint64_t merged = merge_trace_streams(
          streamed.part_paths, merged_path.string(), streamed.name);
      t1 = std::chrono::steady_clock::now();
      add_replay_row("merge (k-way)", merged,
                     std::chrono::duration<double>(t1 - t0).count());

      file_begin = streamed.file_begin;
      std::ofstream rf(ranges_path, std::ios::trunc);
      for (const std::uint32_t v : file_begin) rf << v << "\n";
    }

    const TraceReader reader(merged_path.string());
    const std::span<const TraceRecord> records = reader.records();
    const std::uint64_t n = records.size();
    FarmerConfig rcfg;
    rcfg.attributes = reader.has_paths() ? AttributeMask::all_with_path()
                                         : AttributeMask::all_with_fileid();
    const fs::path pbase = dir / "persist";
    fs::remove_all(pbase, ec);

    MinerOptions ropts = opts;
    ropts.ingest_threads = kProducers;
    {
      const Trace mem = reader.materialize();
      const auto miner = make_miner("sharded", rcfg, mem.dict, ropts);
      add_replay_row("ingest sharded (in-memory)", n,
                     span_replay(*miner, mem.records));
    }
    {
      const auto miner = make_miner("sharded", rcfg, reader.dict(), ropts);
      add_replay_row("replay sharded (mmap)", n, span_replay(*miner, records));
    }
    {
      MinerOptions durable = ropts;
      durable.persist_dir = (pbase / "sharded").string();
      const auto miner = make_miner("sharded", rcfg, reader.dict(), durable);
      add_replay_row("replay sharded (wal+ckpt)", n,
                     span_replay(*miner, records));
    }
    {
      const auto miner = make_miner("concurrent", rcfg, reader.dict(), ropts);
      add_replay_row("replay concurrent x4 (mmap)", n,
                     span_replay_concurrent(*miner, records, kProducers));
    }
    {
      MinerOptions durable = ropts;
      durable.persist_dir = (pbase / "concurrent").string();
      const auto miner =
          make_miner("concurrent", rcfg, reader.dict(), durable);
      add_replay_row("replay concurrent x4 (wal+ckpt)", n,
                     span_replay_concurrent(*miner, records, kProducers));
    }
    {
      MinerOptions router = ropts;
      router.router_tenants = file_begin.size() - 1;
      router.router_backends = "concurrent";
      router.router_tenant_of = [begins = file_begin](FileId f) {
        return tenant_of_ranges(begins, f);
      };
      const auto miner = make_miner("router", rcfg, reader.dict(), router);
      add_replay_row("replay router (concurrent)", n,
                     span_replay_concurrent(*miner, records, kProducers));
    }
    fs::remove_all(pbase, ec);
    if (!keep) fs::remove_all(dir, ec);
  }

  if (json) {
    std::cout << "{\"bench\": \"bench_ingest_throughput\", \"scale\": "
              << bench_scale() << ", \"publish_files\": " << publish_files
              << ", \"tables\": [";
    ingest.print_json(std::cout, "pure_ingest");
    std::cout << ", ";
    parallel_apply.print_json(std::cout, "parallel_apply");
    std::cout << ", ";
    publish.print_json(std::cout, "publish_cost");
    std::cout << ", ";
    mixed.print_json(std::cout, "mixed_ingest_readers");
    std::cout << ", ";
    tenants_tbl.print_json(std::cout, "multi_tenant");
    std::cout << ", ";
    cluster_tbl.print_json(std::cout, "cluster");
    std::cout << ", ";
    recovery.print_json(std::cout, "recovery");
    std::cout << ", ";
    disk_replay.print_json(std::cout, "disk_replay");
    std::cout << "]}\n";
    return 0;
  }

  mixed.print(std::cout);

  std::cout << "\nMulti-tenant serving: merged tenant streams "
               "(make_multi_tenant_trace), 4 producers, one shared "
               "\"concurrent\" miner vs the \"router\" backend with one "
               "concurrent child per tenant:\n\n";
  tenants_tbl.print(std::cout);

  std::cout << "\nCluster backend: N loopback shard servers vs a local "
               "ShardedFarmer with the same partition count (the delta is "
               "pure protocol cost — no real network under loopback); the "
               "pipeline=1 row awaits every ack, so its gap to the default "
               "row is what request pipelining buys:\n\n";
  cluster_tbl.print(std::cout);

  std::cout << "\nDurable persistence: WAL + checkpoint overhead on the "
               "ingest path, checkpoint save cost, and recovery wall-clock "
               "(checkpoint deserialization vs checkpoint + ~40%-of-trace "
               "WAL replay):\n\n";
  recovery.print(std::cout);

  std::cout << "\nDisk replay: streamed generate → external k-way merge → "
               "mmap replay of the merged v3 trace into every backend, vs "
               "the same ingest over an in-memory Trace (FARMER_TRACE_DIR / "
               "FARMER_TRACE_TENANTS / FARMER_TRACE_ROUNDS size and place "
               "the trace):\n\n";
  disk_replay.print(std::cout);

  std::cout << "\nNote: FARMER_SHARDS (default 4) sets the mining "
               "partitions for both backends; producer counts above the "
               "machine's cores measure queueing, not mining. The mixed "
               "table fixes 4 producers and varies reader threads; "
               "\"shared_mutex (pre-RCU)\" reproduces the PR-2 drain-path "
               "locking that the RCU shard-table replaced, and the "
               "coalesced row trades publish frequency (bounded by "
               "FARMER_PUBLISH_MAX_DELAY_MS staleness) for fewer table "
               "swaps. The publish-cost table is the copy-on-write story: "
               "the deep-copy column scales with the whole shard, the COW "
               "column with the dirty set (ingest us carries the clone "
               "cost, paid once per touched file per publish window).\n";
  return 0;
}
