// Ingest throughput under concurrent producers, and query latency under
// mixed ingest + multi-reader load.
//
// FARMER's premise is mining live metadata-server request streams, so the
// numbers that matter at peta-scale are (a) sustained ingest records/s and
// (b) Correlator-List query latency while ingest never stops. This bench
// reports both:
//
//   1. Pure ingest: the HP trace replayed into the "concurrent" backend
//      from 1/2/4/8 producer threads (records partitioned by process,
//      256-record batches), wall-clock throughput including the final
//      flush(), with the synchronous "sharded" observe_batch() path as the
//      0-producer baseline.
//   2. Mixed ingest + N readers: 4 producers replay the trace while N
//      reader threads hammer snapshot() on Zipf-distributed hot files.
//      Three query paths are compared: the pre-RCU design (every query
//      behind one shared_mutex, resurrected locally as LockedShardedMiner —
//      exactly PR 2's drain-path locking), the RCU-published shard-table
//      path, and RCU plus the epoch-validated Correlator-List cache. The
//      acceptance bar is query p50 improving with 4+ readers vs. the
//      shared_mutex baseline while ingest throughput holds.
#include "bench_util.hpp"

#include <atomic>
#include <shared_mutex>

#include "common/stats.hpp"
#include "common/zipf.hpp"
#include "core/concurrent_farmer.hpp"

namespace {

using namespace farmer;
using namespace farmer::bench;

// Writer-priority reader/writer lock for the baseline below. glibc's
// pthread_rwlock (behind std::shared_mutex) is reader-preferring by
// default: the spin-looping reader threads of this bench would starve the
// ingest writers *forever*, which measures a livelock, not a latency
// distribution. Writer priority (new readers wait while a writer waits) is
// the strongest practical variant of the locked design, so beating it is a
// fair win for the RCU path.
class WriterPriorityRwLock {
 public:
  void lock_shared() {
    std::unique_lock<std::mutex> lk(mu_);
    cv_readers_.wait(lk,
                     [&] { return !writer_active_ && waiting_writers_ == 0; });
    ++active_readers_;
  }
  void unlock_shared() {
    std::lock_guard<std::mutex> lk(mu_);
    if (--active_readers_ == 0) cv_writers_.notify_one();
  }
  void lock() {
    std::unique_lock<std::mutex> lk(mu_);
    ++waiting_writers_;
    cv_writers_.wait(lk,
                     [&] { return !writer_active_ && active_readers_ == 0; });
    --waiting_writers_;
    writer_active_ = true;
  }
  void unlock() {
    std::lock_guard<std::mutex> lk(mu_);
    writer_active_ = false;
    if (waiting_writers_ > 0)
      cv_writers_.notify_one();
    else
      cv_readers_.notify_all();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_readers_;
  std::condition_variable cv_writers_;
  int active_readers_ = 0;
  int waiting_writers_ = 0;
  bool writer_active_ = false;
};

// The pre-RCU "concurrent" query path, kept as the measurement baseline:
// one reader/writer lock in front of a ShardedFarmer, write side held for
// whole batch applies, read side taken by every query. This is what the
// RCU shard-table replaced; keeping it runnable makes the regression
// visible in every future run instead of only in PR-3's commit message.
class LockedShardedMiner final : public CorrelationMiner {
 public:
  LockedShardedMiner(const FarmerConfig& cfg,
                     std::shared_ptr<const TraceDictionary> dict,
                     std::size_t shards)
      : inner_(cfg, std::move(dict), shards) {}

  void observe(const TraceRecord& rec) override {
    mu_.lock();
    inner_.observe(rec);
    mu_.unlock();
  }
  void observe_batch(std::span<const TraceRecord> records) override {
    mu_.lock();
    inner_.observe_batch(records);
    mu_.unlock();
  }
  [[nodiscard]] CorrelatorView snapshot(FileId f) const override {
    mu_.lock_shared();
    CorrelatorView view(inner_.correlators(f));
    mu_.unlock_shared();
    return view;
  }
  [[nodiscard]] double correlation_degree(FileId a, FileId b) const override {
    mu_.lock_shared();
    const double d = inner_.correlation_degree(a, b);
    mu_.unlock_shared();
    return d;
  }
  [[nodiscard]] std::uint64_t access_count(FileId f) const override {
    mu_.lock_shared();
    const std::uint64_t n = inner_.access_count(f);
    mu_.unlock_shared();
    return n;
  }
  [[nodiscard]] double access_frequency(FileId pred,
                                        FileId succ) const override {
    mu_.lock_shared();
    const double fr = inner_.access_frequency(pred, succ);
    mu_.unlock_shared();
    return fr;
  }
  [[nodiscard]] MinerStats stats() const override {
    mu_.lock_shared();
    MinerStats s = inner_.stats();
    mu_.unlock_shared();
    return s;
  }
  [[nodiscard]] std::size_t footprint_bytes() const noexcept override {
    return inner_.footprint_bytes();
  }
  [[nodiscard]] const char* name() const noexcept override {
    return "locked-sharded";
  }

 private:
  mutable WriterPriorityRwLock mu_;
  ShardedFarmer inner_;
};

struct MixedResult {
  double ingest_secs = 0.0;
  std::uint64_t queries = 0;
  LatencyHistogram latency_ns;
};

/// 4 producer threads replay `parts` while `readers` threads snapshot()
/// Zipf-hot files as fast as they can; readers stop once ingest (including
/// the final flush) is done. Per-query wall latencies land in a merged
/// nanosecond histogram.
MixedResult mixed_replay(CorrelationMiner& miner,
                         const std::vector<std::vector<TraceRecord>>& parts,
                         std::size_t readers, std::uint32_t file_count) {
  MixedResult out;
  std::atomic<bool> done{false};
  std::vector<LatencyHistogram> lats(readers);
  std::vector<std::thread> reader_threads;
  reader_threads.reserve(readers);
  for (std::size_t r = 0; r < readers; ++r) {
    reader_threads.emplace_back([&, r] {
      Rng rng(0x9000 + r);
      const ZipfRejection zipf(file_count, 1.1);
      std::size_t sink = 0;
      while (!done.load(std::memory_order_acquire)) {
        const FileId f(static_cast<std::uint32_t>(zipf.sample(rng)));
        const auto t0 = std::chrono::steady_clock::now();
        const CorrelatorView view = miner.snapshot(f);
        const auto t1 = std::chrono::steady_clock::now();
        sink += view.size();  // keep the query observable
        lats[r].record(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                .count()));
      }
      // Publish the sink so the compiler cannot drop the loop body.
      volatile std::size_t keep = sink;
      (void)keep;
    });
  }
  out.ingest_secs = concurrent_replay(miner, parts);
  done.store(true, std::memory_order_release);
  for (auto& t : reader_threads) t.join();
  for (const auto& h : lats) out.latency_ns.merge(h);
  out.queries = out.latency_ns.count();
  return out;
}

}  // namespace

int main() {
  using namespace farmer;
  using namespace farmer::bench;

  print_experiment_header(
      std::cout, "Ingest throughput",
      "concurrent-producer trace replay into the \"concurrent\" backend "
      "(HP trace, 256-record batches, throughput includes flush)",
      "throughput should not collapse as producers grow: enqueue is "
      "lock-free, the drain applies batches through the sharded miner");

  const Trace& trace = paper_trace(TraceKind::kHP);
  const FarmerConfig cfg = fpa_config(trace);
  MinerOptions opts = miner_options();

  Table table({"producers", "backend", "records", "seconds", "records/s",
               "epochs"});

  // Baseline: synchronous sharded ingest on the caller's thread.
  {
    const auto sharded = make_miner("sharded", cfg, trace.dict, opts);
    const auto start = std::chrono::steady_clock::now();
    sharded->observe_batch(trace.records);
    const auto end = std::chrono::steady_clock::now();
    const double secs = std::chrono::duration<double>(end - start).count();
    table.add_row({"0 (sync)", "sharded",
                   std::to_string(trace.records.size()), fmt_double(secs, 3),
                   fmt_double(static_cast<double>(trace.records.size()) / secs,
                              0),
                   "-"});
  }

  for (const std::size_t producers : {1u, 2u, 4u, 8u}) {
    opts.ingest_threads = producers;
    const auto miner = make_miner("concurrent", cfg, trace.dict, opts);
    const auto parts = partition_by_process(trace, producers);
    const double secs = concurrent_replay(*miner, parts);
    const MinerStats s = miner->stats();
    table.add_row({std::to_string(producers), "concurrent",
                   std::to_string(s.requests), fmt_double(secs, 3),
                   fmt_double(static_cast<double>(s.requests) / secs, 0),
                   std::to_string(s.epoch)});
  }
  table.print(std::cout);

  // ---------------------------------------------- mixed ingest + readers --
  std::cout << "\nMixed ingest + N readers (4 producers, Zipf(1.1) hot "
               "queries, latencies in ns):\n\n";
  constexpr std::size_t kProducers = 4;
  const auto parts = partition_by_process(trace, kProducers);
  const auto file_count =
      static_cast<std::uint32_t>(trace.dict->files.size());

  Table mixed({"query path", "readers", "ingest rec/s", "queries", "q p50",
               "q p95", "q p99", "cache hit%"});
  for (const std::size_t readers : {4u, 8u}) {
    {
      LockedShardedMiner locked(cfg, trace.dict, opts.shards);
      const MixedResult r = mixed_replay(locked, parts, readers, file_count);
      mixed.add_row(
          {"shared_mutex (pre-RCU)", std::to_string(readers),
           fmt_double(static_cast<double>(trace.records.size()) /
                          r.ingest_secs,
                      0),
           std::to_string(r.queries), std::to_string(r.latency_ns.p50()),
           std::to_string(r.latency_ns.p95()),
           std::to_string(r.latency_ns.p99()), "-"});
    }
    {
      MinerOptions rcu = opts;
      rcu.ingest_threads = kProducers;
      rcu.query_cache_capacity = 0;
      const auto miner = make_miner("concurrent", cfg, trace.dict, rcu);
      const MixedResult r = mixed_replay(*miner, parts, readers, file_count);
      mixed.add_row(
          {"RCU shard-table", std::to_string(readers),
           fmt_double(static_cast<double>(trace.records.size()) /
                          r.ingest_secs,
                      0),
           std::to_string(r.queries), std::to_string(r.latency_ns.p50()),
           std::to_string(r.latency_ns.p95()),
           std::to_string(r.latency_ns.p99()), "-"});
    }
    {
      MinerOptions cached = opts;
      cached.ingest_threads = kProducers;
      cached.query_cache_capacity = 4096;
      const auto miner = make_miner("concurrent", cfg, trace.dict, cached);
      const MixedResult r = mixed_replay(*miner, parts, readers, file_count);
      const MinerStats s = miner->stats();
      const double hit_pct =
          s.cache_hits + s.cache_misses
              ? 100.0 * static_cast<double>(s.cache_hits) /
                    static_cast<double>(s.cache_hits + s.cache_misses)
              : 0.0;
      mixed.add_row(
          {"RCU + correlator cache", std::to_string(readers),
           fmt_double(static_cast<double>(trace.records.size()) /
                          r.ingest_secs,
                      0),
           std::to_string(r.queries), std::to_string(r.latency_ns.p50()),
           std::to_string(r.latency_ns.p95()),
           std::to_string(r.latency_ns.p99()), fmt_double(hit_pct, 1)});
    }
  }
  mixed.print(std::cout);

  std::cout << "\nNote: FARMER_SHARDS (default 4) sets the mining "
               "partitions for both backends; producer counts above the "
               "machine's cores measure queueing, not mining. The mixed "
               "table fixes 4 producers and varies reader threads; "
               "\"shared_mutex (pre-RCU)\" reproduces the PR-2 drain-path "
               "locking that the RCU shard-table replaced. The cache row "
               "trades a stripe-lock handshake for the merge: on this "
               "synthetic scale the 4-shard merge is already ~100 ns, so "
               "its win is the avoided merge CPU (see hit%), growing with "
               "shard count and Correlator-List length.\n";
  return 0;
}
