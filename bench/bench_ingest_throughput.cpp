// Ingest throughput under concurrent producers.
//
// FARMER's premise is mining live metadata-server request streams, so the
// number that matters at peta-scale is sustained ingest records/s while
// queries stay serviceable — not serial replay speed. This bench replays
// the HP trace into the "concurrent" backend from 1/2/4/8 producer threads
// (records partitioned by process, pushed in 256-record batches) and
// reports wall-clock throughput including the final flush(), with the
// synchronous "sharded" observe_batch() path as the 0-producer baseline.
#include "bench_util.hpp"

#include "core/concurrent_farmer.hpp"

int main() {
  using namespace farmer;
  using namespace farmer::bench;

  print_experiment_header(
      std::cout, "Ingest throughput",
      "concurrent-producer trace replay into the \"concurrent\" backend "
      "(HP trace, 256-record batches, throughput includes flush)",
      "throughput should not collapse as producers grow: enqueue is "
      "lock-free, the drain applies batches through the sharded miner");

  const Trace& trace = paper_trace(TraceKind::kHP);
  const FarmerConfig cfg = fpa_config(trace);
  MinerOptions opts = miner_options();

  Table table({"producers", "backend", "records", "seconds", "records/s",
               "epochs"});

  // Baseline: synchronous sharded ingest on the caller's thread.
  {
    const auto sharded = make_miner("sharded", cfg, trace.dict, opts);
    const auto start = std::chrono::steady_clock::now();
    sharded->observe_batch(trace.records);
    const auto end = std::chrono::steady_clock::now();
    const double secs = std::chrono::duration<double>(end - start).count();
    table.add_row({"0 (sync)", "sharded",
                   std::to_string(trace.records.size()), fmt_double(secs, 3),
                   fmt_double(static_cast<double>(trace.records.size()) / secs,
                              0),
                   "-"});
  }

  for (const std::size_t producers : {1u, 2u, 4u, 8u}) {
    opts.ingest_threads = producers;
    const auto miner = make_miner("concurrent", cfg, trace.dict, opts);
    const auto parts = partition_by_process(trace, producers);
    const double secs = concurrent_replay(*miner, parts);
    const MinerStats s = miner->stats();
    table.add_row({std::to_string(producers), "concurrent",
                   std::to_string(s.requests), fmt_double(secs, 3),
                   fmt_double(static_cast<double>(s.requests) / secs, 0),
                   std::to_string(s.epoch)});
  }
  table.print(std::cout);
  std::cout << "\nNote: FARMER_SHARDS (default 4) sets the mining "
               "partitions for both backends; producer counts above the "
               "machine's cores measure queueing, not mining.\n";
  return 0;
}
