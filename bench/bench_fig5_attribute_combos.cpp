// Table 5 ("Figure 5") — cache hit ratios for the fifteen attribute
// combinations on HP (File Path as the fourth attribute) and INS/RES
// (File ID as the fourth attribute).
//
// Paper expectation: combinations differ by up to ~13%; path-bearing
// combinations lead on HP ({User, Process, File Path} best at 55.99%);
// the all-attribute combination leads on INS/RES.
#include <vector>

#include "bench_util.hpp"
#include "common/parallel.hpp"

int main() {
  using namespace farmer;
  using namespace farmer::bench;

  print_experiment_header(
      std::cout, "Table 5 / Figure 5",
      "FPA cache hit ratio per attribute combination",
      "spread of ~0.1-13% between combinations; locality attribute (path "
      "or file id) strengthens most combinations");

  struct TraceCol {
    TraceKind kind;
    bool use_path;
  };
  const TraceCol cols[] = {{TraceKind::kHP, true},
                           {TraceKind::kINS, false},
                           {TraceKind::kRES, false}};

  for (const TraceCol& col : cols) {
    const Trace& trace = paper_trace(col.kind);
    const ReplayConfig rc = replay_config(trace);
    const auto combos = paper_attribute_combinations(col.use_path);

    std::vector<double> hits(combos.size());
    parallel_for(combos.size(), [&](std::size_t i) {
      FarmerConfig cfg = fpa_config(trace);
      cfg.attributes = combos[i].mask;
      auto fpa = make_fpa(trace, cfg);
      hits[i] = replay_trace(trace, fpa, rc).hit_ratio();
    });

    Table table({"combination", "hit ratio"});
    double best = 0, worst = 1;
    for (std::size_t i = 0; i < combos.size(); ++i) {
      table.add_row({combos[i].label, pct(hits[i], 4)});
      best = std::max(best, hits[i]);
      worst = std::min(worst, hits[i]);
    }
    std::cout << "\n" << trace_kind_name(col.kind) << ":\n";
    table.print(std::cout);
    std::cout << "spread between best and worst combination: "
              << pct(best - worst) << "\n";
  }
  return 0;
}
