// Figure 3 — cache hit ratio of FPA as a function of max_strength for
// weight p in {0, 0.3, 0.7, 1.0}, on all four traces.
//
// Paper expectation: p = 0.7 achieves the highest hit ratios; INS sits far
// above the other traces; LLNL lowest band.
#include <vector>

#include "bench_util.hpp"
#include "common/parallel.hpp"

int main() {
  using namespace farmer;
  using namespace farmer::bench;

  print_experiment_header(
      std::cout, "Figure 3",
      "FPA cache hit ratio vs max_strength for p in {0, 0.3, 0.7, 1}",
      "p = 0.7 highest curve on every trace; hit-ratio bands: "
      "INS >> HP > RES > LLNL");

  const double kPs[] = {0.0, 0.3, 0.7, 1.0};
  const double kStrengths[] = {0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8};

  for (const TraceKind kind : kAllKinds) {
    const Trace& trace = paper_trace(kind);
    const ReplayConfig rc = replay_config(trace);

    // Flatten the (p, max_strength) grid and sweep it in parallel — each
    // cell is an independent replay over the shared immutable trace.
    struct Cell {
      double p, strength, hit = 0;
    };
    std::vector<Cell> grid;
    for (const double p : kPs)
      for (const double s : kStrengths) grid.push_back({p, s});
    parallel_for(grid.size(), [&](std::size_t i) {
      FarmerConfig cfg = fpa_config(trace);
      cfg.p = grid[i].p;
      cfg.max_strength = grid[i].strength;
      auto fpa = make_fpa(trace, cfg);
      grid[i].hit = replay_trace(trace, fpa, rc).hit_ratio();
    });

    Table table({"max_strength", "p=0 (Nexus-like)", "p=0.3", "p=0.7",
                 "p=1 (semantic only)"});
    for (const double s : kStrengths) {
      std::vector<std::string> row{fmt_double(s, 1)};
      for (const double p : kPs) {
        for (const Cell& c : grid)
          if (c.p == p && c.strength == s) row.push_back(pct(c.hit));
      }
      table.add_row(std::move(row));
    }
    std::cout << "\n" << trace_kind_name(kind) << " (cache "
              << rc.cache_capacity << " entries):\n";
    table.print(std::cout);
  }
  return 0;
}
