// Tables 1 + 2 — semantic-vector construction and the DPA-vs-IPA worked
// example. These are exact-value reproductions: the printed fractions must
// equal the paper's (DPA: 5/7, 1/7, 1/7 — IPA: 2.75/4, 0.25/4, 0.25/4).
#include "bench_util.hpp"
#include "common/interner.hpp"
#include "vsm/similarity.hpp"

int main() {
  using namespace farmer;
  using namespace farmer::bench;

  print_experiment_header(
      std::cout, "Table 1 + Table 2",
      "semantic vectors and DPA vs IPA similarity on the paper's example",
      "DPA: sim(A,B)=5/7, sim(A,C)=sim(B,C)=1/7; "
      "IPA: sim(A,B)=2.75/4, sim(A,C)=sim(B,C)=0.25/4");

  Interner interner;
  auto make = [&](const char* user, const char* proc, const char* host,
                  const char* path) {
    SemanticVector sv;
    sv.user = interner.intern(user);
    sv.process = interner.intern(proc);
    sv.host = interner.intern(host);
    intern_path_components(path, interner, sv.path_components);
    return sv;
  };
  const SemanticVector a = make("user1", "p1", "host1", "/home/user1/paper/a");
  const SemanticVector b = make("user1", "p2", "host1", "/home/user1/paper/b");
  const SemanticVector c = make("user2", "p3", "host2", "/home/user2/c");
  const auto mask = AttributeMask::all_with_path();

  Table table({"pair", "DPA (measured)", "DPA (paper)", "IPA (measured)",
               "IPA (paper)"});
  struct Row {
    const char* name;
    const SemanticVector* x;
    const SemanticVector* y;
    const char* dpa_paper;
    const char* ipa_paper;
  };
  const Row rows[] = {
      {"sim(A,B)", &a, &b, "5/7 = 0.7143", "2.75/4 = 0.6875"},
      {"sim(A,C)", &a, &c, "1/7 = 0.1429", "0.25/4 = 0.0625"},
      {"sim(B,C)", &b, &c, "1/7 = 0.1429", "0.25/4 = 0.0625"},
  };
  for (const Row& r : rows) {
    table.add_row(
        {r.name,
         fmt_double(similarity(*r.x, *r.y, mask, PathMode::kDivided), 4),
         r.dpa_paper,
         fmt_double(similarity(*r.x, *r.y, mask, PathMode::kIntegrated), 4),
         r.ipa_paper});
  }
  table.print(std::cout);

  // The deep-directory pathology motivating IPA (Section 3.2.1): an
  // executable and the library it links share every scalar attribute but no
  // path components.
  std::cout << "\ndeep-path pathology (binary vs linked library, all scalar "
               "attributes equal):\n";
  const SemanticVector exe =
      make("u", "p", "h", "/home/u/project/build/bin/app");
  const SemanticVector lib = make("u", "p", "h", "/lib/libm.so");
  Table path_table({"mode", "similarity", "passes max_strength 0.4?"});
  for (const auto mode : {PathMode::kDivided, PathMode::kIntegrated}) {
    const double s = similarity(exe, lib, mask, mode);
    path_table.add_row({mode == PathMode::kDivided ? "DPA" : "IPA",
                        fmt_double(s, 4),
                        0.7 * s >= 0.4 ? "yes" : "no (filtered!)"});
  }
  path_table.print(std::cout);
  std::cout << "\nIPA keeps the strongly-correlated exe/lib pair above the "
               "validity threshold; DPA filters it — the paper's reason for "
               "selecting IPA.\n";
  return 0;
}
