// Figure 8 — average metadata response time for LLNL, RES and HP under
// FPA, Nexus and LRU (DES replay of the MDS).
//
// Paper expectation: FPA improves mean response time over Nexus by up to
// ~24% and over LRU by up to ~35%.
#include <memory>

#include "bench_util.hpp"
#include "storage/cluster.hpp"

int main() {
  using namespace farmer;
  using namespace farmer::bench;

  print_experiment_header(
      std::cout, "Figure 8",
      "average MDS response time: FPA vs Nexus vs LRU (DES)",
      "FPA fastest on every trace; up to ~24% over Nexus and ~35% over LRU");

  Table table({"trace", "FPA (ms)", "Nexus (ms)", "LRU (ms)",
               "FPA vs Nexus", "FPA vs LRU"});
  for (const TraceKind kind :
       {TraceKind::kLLNL, TraceKind::kRES, TraceKind::kHP}) {
    const Trace& trace = paper_trace(kind);
    ClusterConfig cc;
    cc.mds.cache_capacity = default_cache_capacity(trace);
    cc.mds.prefetch_degree = kDefaultPrefetchDegree;
    cc.mds.disk_servers = 2;  // MDS with BDB page cache + two spindles

    // Factory-built contenders ("fpa" mines on the env-selected backend).
    auto run = [&](std::string_view predictor) {
      const auto p = make_bench_predictor(trace, predictor);
      return run_cluster(trace, *p, cc).mean_response_ms();
    };
    const double fpa = run("fpa");
    const double nexus = run("nexus");
    const double lru = run("none");

    table.add_row({trace_kind_name(kind), fmt_double(fpa, 3),
                   fmt_double(nexus, 3), fmt_double(lru, 3),
                   "-" + pct(1.0 - fpa / nexus, 1),
                   "-" + pct(1.0 - fpa / lru, 1)});
  }
  table.print(std::cout);
  return 0;
}
