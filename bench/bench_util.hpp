// Shared helpers for the reproduction benches.
//
// Every bench regenerates its tables from the same seed and scale so rows
// are comparable across binaries. Traces are cached per process.
#pragma once

#include <cerrno>
#include <cstdlib>
#include <iostream>
#include <map>
#include <string>
#include <string_view>

#include "analysis/experiment.hpp"
#include "analysis/table.hpp"
#include "api/miner_factory.hpp"
#include "core/config.hpp"
#include "prefetch/fpa.hpp"
#include "prefetch/nexus.hpp"
#include "prefetch/replay.hpp"
#include "trace/generator.hpp"

namespace farmer::bench {

/// Experiment scale: fraction of the full synthetic volume. Chosen so the
/// whole bench suite completes in minutes on a laptop while keeping every
/// trace large enough for stable ratios.
inline constexpr double kScale = 0.25;

inline const Trace& paper_trace(TraceKind kind) {
  static std::map<TraceKind, Trace> cache;
  auto it = cache.find(kind);
  if (it == cache.end())
    it = cache.emplace(kind, make_paper_trace(kind, kExperimentSeed, kScale))
             .first;
  return it->second;
}

inline const TraceKind kAllKinds[] = {TraceKind::kLLNL, TraceKind::kINS,
                                      TraceKind::kRES, TraceKind::kHP};

/// FARMER configuration matched to a trace's attribute availability.
inline FarmerConfig fpa_config(const Trace& trace) {
  FarmerConfig cfg;
  cfg.attributes = trace.has_paths ? AttributeMask::all_with_path()
                                   : AttributeMask::all_with_fileid();
  return cfg;
}

/// Mining backend behind every bench's FPA, selected at runtime:
///   FARMER_MINER=farmer|sharded|nexus   (default "farmer")
///   FARMER_SHARDS=<n>                   (default 4, "sharded" only)
/// so ablations over the backend are a flag, not a recompile.
inline const char* miner_backend() {
  const char* b = std::getenv("FARMER_MINER");
  return (b && *b) ? b : "farmer";
}

inline MinerOptions miner_options() {
  MinerOptions opts;
  if (const char* s = std::getenv("FARMER_SHARDS"); s && *s) {
    constexpr unsigned long kMaxShards = 4096;
    char* end = nullptr;
    errno = 0;
    const unsigned long n = std::strtoul(s, &end, 10);
    if (end == s || *end != '\0' || n == 0 || errno == ERANGE ||
        n > kMaxShards) {
      std::cerr << "invalid FARMER_SHARDS \"" << s
                << "\": expected an integer in [1, " << kMaxShards << "]\n";
      std::exit(2);
    }
    opts.shards = static_cast<std::size_t>(n);
  }
  return opts;
}

/// Miner for the selected backend (validated through the factory). The
/// selection is announced once on stderr so saved bench output records
/// which backend produced it.
inline std::unique_ptr<CorrelationMiner> make_bench_miner(
    const Trace& trace, const FarmerConfig& cfg) {
  const MinerOptions opts = miner_options();
  std::unique_ptr<CorrelationMiner> miner;
  try {
    miner = make_miner(miner_backend(), cfg, trace.dict, opts);
  } catch (const std::invalid_argument& e) {
    std::cerr << e.what() << "\n";
    std::exit(2);
  }
  static const bool announced = [&] {
    std::cerr << "mining backend: " << miner->name();
    if (std::string_view(miner->name()) == "sharded")
      std::cerr << " (shards=" << opts.shards << ")";
    std::cerr << "\n";
    return true;
  }();
  (void)announced;
  return miner;
}

/// FPA over the selected backend.
inline FpaPredictor make_fpa(const Trace& trace, const FarmerConfig& cfg) {
  return FpaPredictor(make_bench_miner(trace, cfg));
}
inline FpaPredictor make_fpa(const Trace& trace) {
  return make_fpa(trace, fpa_config(trace));
}

inline ReplayConfig replay_config(const Trace& trace) {
  ReplayConfig rc;
  rc.cache_capacity = default_cache_capacity(trace);
  rc.prefetch_degree = kDefaultPrefetchDegree;
  return rc;
}

inline std::string pct(double ratio, int precision = 2) {
  return fmt_double(ratio * 100.0, precision) + "%";
}

}  // namespace farmer::bench
