// Shared helpers for the reproduction benches.
//
// Every bench regenerates its tables from the same seed and scale so rows
// are comparable across binaries. Traces are cached per process.
#pragma once

#include <iostream>
#include <map>
#include <string>

#include "analysis/experiment.hpp"
#include "analysis/table.hpp"
#include "core/config.hpp"
#include "prefetch/fpa.hpp"
#include "prefetch/nexus.hpp"
#include "prefetch/replay.hpp"
#include "trace/generator.hpp"

namespace farmer::bench {

/// Experiment scale: fraction of the full synthetic volume. Chosen so the
/// whole bench suite completes in minutes on a laptop while keeping every
/// trace large enough for stable ratios.
inline constexpr double kScale = 0.25;

inline const Trace& paper_trace(TraceKind kind) {
  static std::map<TraceKind, Trace> cache;
  auto it = cache.find(kind);
  if (it == cache.end())
    it = cache.emplace(kind, make_paper_trace(kind, kExperimentSeed, kScale))
             .first;
  return it->second;
}

inline const TraceKind kAllKinds[] = {TraceKind::kLLNL, TraceKind::kINS,
                                      TraceKind::kRES, TraceKind::kHP};

/// FARMER configuration matched to a trace's attribute availability.
inline FarmerConfig fpa_config(const Trace& trace) {
  FarmerConfig cfg;
  cfg.attributes = trace.has_paths ? AttributeMask::all_with_path()
                                   : AttributeMask::all_with_fileid();
  return cfg;
}

inline ReplayConfig replay_config(const Trace& trace) {
  ReplayConfig rc;
  rc.cache_capacity = default_cache_capacity(trace);
  rc.prefetch_degree = kDefaultPrefetchDegree;
  return rc;
}

inline std::string pct(double ratio, int precision = 2) {
  return fmt_double(ratio * 100.0, precision) + "%";
}

}  // namespace farmer::bench
