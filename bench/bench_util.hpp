// Shared helpers for the reproduction benches.
//
// Every bench regenerates its tables from the same seed and scale so rows
// are comparable across binaries. Traces are cached per process.
#pragma once

#include <chrono>
#include <cstdlib>
#include <iostream>
#include <map>
#include <span>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "analysis/experiment.hpp"
#include "analysis/table.hpp"
#include "api/miner_factory.hpp"
#include "api/predictor_factory.hpp"
#include "api/runtime_config.hpp"
#include "core/config.hpp"
#include "prefetch/fpa.hpp"
#include "prefetch/nexus.hpp"
#include "prefetch/replay.hpp"
#include "trace/generator.hpp"

namespace farmer::bench {

/// The process's FARMER_* environment, parsed once through the public
/// RuntimeConfig loader (api/runtime_config.hpp) — the benches own no env
/// parsing of their own. A malformed variable prints its ConfigError
/// diagnostic and exits 2 (the classic bench contract: a typo never
/// silently benchmarks the default).
inline const RuntimeConfig& runtime() {
  static const RuntimeConfig rc = RuntimeConfig::from_env_or_exit();
  return rc;
}

/// Experiment scale: fraction of the full synthetic volume. Chosen so the
/// whole bench suite completes in minutes on a laptop while keeping every
/// trace large enough for stable ratios. FARMER_BENCH_SCALE overrides it
/// (the CI bench-smoke job runs the suite at a tiny scale).
inline double bench_scale() { return runtime().bench_scale; }

inline const Trace& paper_trace(TraceKind kind) {
  static std::map<TraceKind, Trace> cache;
  auto it = cache.find(kind);
  if (it == cache.end())
    it = cache
             .emplace(kind,
                      make_paper_trace(kind, kExperimentSeed, bench_scale()))
             .first;
  return it->second;
}

inline const TraceKind kAllKinds[] = {TraceKind::kLLNL, TraceKind::kINS,
                                      TraceKind::kRES, TraceKind::kHP};

/// FARMER configuration matched to a trace's attribute availability.
inline FarmerConfig fpa_config(const Trace& trace) {
  FarmerConfig cfg;
  cfg.attributes = trace.has_paths ? AttributeMask::all_with_path()
                                   : AttributeMask::all_with_fileid();
  return cfg;
}

/// Mining backend behind every bench's FPA, selected at runtime:
///   FARMER_MINER=farmer|sharded|concurrent|router|nexus|cluster
///                               (default "farmer")
///   FARMER_SHARDS=<n>           (default 4, "sharded"/"concurrent")
///   FARMER_INGEST_THREADS=<n>   (default 4, "concurrent" producer slots)
///   FARMER_APPLY_THREADS=<n>    (default 0 = auto: worker lanes for the
///                                shard-disjoint parallel apply behind
///                                observe_batch on "sharded"/"concurrent";
///                                1 = serial apply, capped at the shard
///                                count, byte-identical at every setting)
///   FARMER_QUERY_CACHE=<n>      (default 0 = off, "concurrent" hot
///                                Correlator-List cache entries)
///   FARMER_MAX_PENDING=<n>      (default backend, "concurrent" ingest
///                                backpressure bound in records)
///   FARMER_PUBLISH_INTERVAL=<n> (default 0/1 = publish every drain round,
///                                "concurrent" publish-coalescing interval
///                                in applied records)
///   FARMER_PUBLISH_MAX_DELAY_MS=<n> (default backend = 4 ms, staleness
///                                bound for coalesced publishes)
///   FARMER_ROUTER_TENANTS=<n>   (default 2, "router" tenant partitions)
///   FARMER_ROUTER_BACKENDS=<s>  (default "farmer" everywhere, "router"
///                                per-tenant backend spec: one name or
///                                "0=concurrent,1=sharded,*=farmer")
///   FARMER_PERSIST_DIR=<path>   (default off: durable persistence
///                                directory — WAL + checkpoints, recovered
///                                on construction; benches add a per-trace
///                                subdirectory, "router" per-tenant ones)
///   FARMER_CHECKPOINT_INTERVAL=<n> (default backend = 65536, checkpoint
///                                every n ingested records)
///   FARMER_WAL_GROUP_COMMIT=<n> (default backend = 4096, WAL commit-group
///                                size in records; closed groups fsync on
///                                a background sync thread)
///   FARMER_CLUSTER_SHARDS=<n>   (default 2, "cluster" shard servers)
///   FARMER_CLUSTER_TRANSPORT=<s> (default "loopback": the only registered
///                                transport — in-process shard servers)
///   FARMER_CLUSTER_TIMEOUT_MS=<n> (default backend = 2000, per-attempt
///                                response deadline of a cluster request)
///   FARMER_CLUSTER_RETRIES=<n>  (default 2, re-sends before a cluster
///                                request fails; retries are idempotent)
///   FARMER_CLUSTER_PIPELINE=<n> (default backend = 64, un-acked requests
///                                in flight per shard channel)
/// so ablations over the backend are a flag, not a recompile. The README's
/// configuration table is the authoritative reference for these knobs;
/// parsing lives in RuntimeConfig.
inline const std::string& miner_backend() { return runtime().miner_backend; }

/// Disk-replay controls for bench_ingest_throughput's disk_replay table
/// (the out-of-core generate→merge→replay pipeline):
///   FARMER_TRACE_DIR=<path>   (default: a fresh temp directory, removed
///                              afterwards. When set, the directory is kept
///                              and an existing merged trace is reused, so
///                              a multi-GB trace is generated once and
///                              replayed by every subsequent run.)
///   FARMER_TRACE_TENANTS=<n>  (default 2, max 4: tenant streams mixed into
///                              the replayed trace, cycling LLNL/INS/RES/HP)
///   FARMER_TRACE_ROUNDS=<n>   (default 1: workload rounds per tenant;
///                              record volume scales linearly, generator
///                              memory does not — raise this to build
///                              multi-GB traces)
inline const std::string& trace_dir() { return runtime().trace_dir; }
inline std::size_t trace_tenants() { return runtime().trace_tenants; }
inline std::size_t trace_rounds() { return runtime().trace_rounds; }

inline const MinerOptions& miner_options() { return runtime().miner; }

/// True when argv carries `--json`: the bench emits one machine-readable
/// JSON document on stdout (scripts/bench_to_json.py normalizes and
/// validates it into the committed BENCH_*.json baselines) instead of the
/// human tables.
inline bool json_output_requested(int argc, char** argv) {
  for (int i = 1; i < argc; ++i)
    if (std::string_view(argv[i]) == "--json") return true;
  return false;
}

/// Miner for the selected backend (validated through the factory). The
/// selection is announced once on stderr so saved bench output records
/// which backend produced it.
inline std::unique_ptr<CorrelationMiner> make_bench_miner(
    const Trace& trace, const FarmerConfig& cfg) {
  MinerOptions opts = miner_options();
  // A persist directory is bound to one trace's dictionary; benches sweep
  // several traces, so each trace gets its own subdirectory (mirroring the
  // router's per-tenant layout).
  if (!opts.persist_dir.empty() && !trace.name.empty())
    opts.persist_dir += "/" + trace.name;
  std::unique_ptr<CorrelationMiner> miner;
  try {
    miner = make_miner(miner_backend(), cfg, trace.dict, opts);
  } catch (const std::invalid_argument& e) {
    std::cerr << e.what() << "\n";
    std::exit(2);
  }
  static const bool announced = [&] {
    std::cerr << "mining backend: " << miner->name();
    if (std::string_view(miner->name()) == "sharded")
      std::cerr << " (shards=" << opts.shards << ")";
    if (std::string_view(miner->name()) == "concurrent")
      std::cerr << " (shards=" << opts.shards
                << ", ingest_threads=" << opts.ingest_threads
                << ", query_cache=" << opts.query_cache_capacity << ")";
    if (std::string_view(miner->name()) == "router")
      std::cerr << " (tenants=" << opts.router_tenants << ", backends="
                << (opts.router_backends.empty() ? "farmer"
                                                 : opts.router_backends)
                << ")";
    std::cerr << "\n";
    return true;
  }();
  (void)announced;
  return miner;
}

/// FPA over the selected backend.
inline FpaPredictor make_fpa(const Trace& trace, const FarmerConfig& cfg) {
  return FpaPredictor(make_bench_miner(trace, cfg));
}
inline FpaPredictor make_fpa(const Trace& trace) {
  return make_fpa(trace, fpa_config(trace));
}

/// Predictor for `name` through the PredictorFactory, carrying the
/// environment's miner selection (FARMER_MINER and friends) behind "fpa".
/// Empty `name` = the environment's FARMER_PREDICTOR. Mirrors
/// make_bench_miner's per-trace persistence layout and exit-on-error
/// contract.
inline std::unique_ptr<Predictor> make_bench_predictor(
    const Trace& trace, std::string_view name = {}) {
  if (name.empty()) name = runtime().predictor;
  PredictorOptions opts = runtime().predictor_options;
  if (!opts.miner.persist_dir.empty() && !trace.name.empty())
    opts.miner.persist_dir += "/" + trace.name;
  try {
    return make_predictor(name, fpa_config(trace), trace.dict, opts);
  } catch (const std::invalid_argument& e) {
    std::cerr << e.what() << "\n";
    std::exit(2);
  }
}

/// Partitions a trace's records across `producers` ingest streams by
/// process id (stream affinity, mirroring ShardedFarmer's routing), keeping
/// each process's records in trace order within its partition.
inline std::vector<std::vector<TraceRecord>> partition_by_process(
    const Trace& trace, std::size_t producers) {
  std::vector<std::vector<TraceRecord>> parts(producers == 0 ? 1 : producers);
  for (const TraceRecord& r : trace.records)
    parts[static_cast<std::size_t>(r.process.value()) % parts.size()]
        .push_back(r);
  return parts;
}

/// Multi-threaded trace-replay driver: one thread per partition pushes its
/// records into `miner` in `chunk`-sized observe_batch() calls, then the
/// caller's thread flush()es. Returns wall-clock seconds for ingest+flush.
inline double concurrent_replay(CorrelationMiner& miner,
                                const std::vector<std::vector<TraceRecord>>&
                                    parts,
                                std::size_t chunk = 256) {
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> producers;
  producers.reserve(parts.size());
  for (const auto& part : parts) {
    producers.emplace_back([&miner, &part, chunk] {
      for (std::size_t i = 0; i < part.size(); i += chunk) {
        const std::size_t n = std::min(chunk, part.size() - i);
        miner.observe_batch(std::span<const TraceRecord>(&part[i], n));
      }
    });
  }
  for (auto& t : producers) t.join();
  miner.flush();
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(end - start).count();
}

/// Single-threaded replay driver over a borrowed record span — the span
/// can point straight into a TraceReader mapping, so disk replay feeds the
/// miner without materializing a Trace. Returns wall-clock seconds for
/// ingest+flush.
inline double span_replay(CorrelationMiner& miner,
                          std::span<const TraceRecord> records,
                          std::size_t chunk = 1024) {
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < records.size(); i += chunk)
    miner.observe_batch(records.subspan(i, std::min(chunk,
                                                    records.size() - i)));
  miner.flush();
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(end - start).count();
}

/// Multi-threaded replay driver over a borrowed record span: `producers`
/// threads each scan the (shared, read-only) span and push the records of
/// their process-id partition in `chunk`-sized batches — the same stream
/// affinity as partition_by_process, without copying partitions out first.
inline double span_replay_concurrent(CorrelationMiner& miner,
                                     std::span<const TraceRecord> records,
                                     std::size_t producers,
                                     std::size_t chunk = 256) {
  if (producers == 0) producers = 1;
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(producers);
  for (std::size_t p = 0; p < producers; ++p) {
    threads.emplace_back([&miner, records, producers, chunk, p] {
      std::vector<TraceRecord> batch;
      batch.reserve(chunk);
      for (const TraceRecord& r : records) {
        if (static_cast<std::size_t>(r.process.value()) % producers != p)
          continue;
        batch.push_back(r);
        if (batch.size() == chunk) {
          miner.observe_batch(batch);
          batch.clear();
        }
      }
      if (!batch.empty()) miner.observe_batch(batch);
    });
  }
  for (auto& t : threads) t.join();
  miner.flush();
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(end - start).count();
}

inline ReplayConfig replay_config(const Trace& trace) {
  ReplayConfig rc;
  rc.cache_capacity = default_cache_capacity(trace);
  rc.prefetch_degree = kDefaultPrefetchDegree;
  return rc;
}

inline std::string pct(double ratio, int precision = 2) {
  return fmt_double(ratio * 100.0, precision) + "%";
}

}  // namespace farmer::bench
