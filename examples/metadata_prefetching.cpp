// Metadata-server prefetching shoot-out: FPA vs the full baseline zoo on a
// chosen paper trace, reporting hit ratio, prefetch accuracy, pollution and
// DES response time.
//
//   ./metadata_prefetching [LLNL|INS|RES|HP] [scale]
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>

#include "analysis/experiment.hpp"
#include "analysis/table.hpp"
#include "api/miner_factory.hpp"
#include "prefetch/fpa.hpp"
#include "prefetch/nexus.hpp"
#include "prefetch/probability_graph.hpp"
#include "prefetch/replay.hpp"
#include "prefetch/sd_graph.hpp"
#include "prefetch/successor.hpp"
#include "storage/cluster.hpp"
#include "trace/generator.hpp"

namespace {

farmer::TraceKind parse_kind(const std::string& s) {
  using farmer::TraceKind;
  if (s == "LLNL") return TraceKind::kLLNL;
  if (s == "INS") return TraceKind::kINS;
  if (s == "RES") return TraceKind::kRES;
  return TraceKind::kHP;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace farmer;
  const TraceKind kind = parse_kind(argc > 1 ? argv[1] : "HP");
  const double scale = argc > 2 ? std::strtod(argv[2], nullptr) : 0.25;

  const Trace trace = make_paper_trace(kind, kExperimentSeed, scale);
  const std::size_t capacity = default_cache_capacity(trace);
  std::cout << "trace " << trace_kind_name(kind) << ": "
            << trace.event_count() << " events, " << trace.file_count()
            << " files, cache " << capacity << " entries\n";

  FarmerConfig fpa_cfg;
  fpa_cfg.attributes = trace.has_paths ? AttributeMask::all_with_path()
                                       : AttributeMask::all_with_fileid();

  // The contenders. FPA and the paper's baselines plus the wider zoo.
  struct Entry {
    std::string name;
    std::unique_ptr<Predictor> predictor;
  };
  std::vector<Entry> entries;
  entries.push_back({"FPA", std::make_unique<FpaPredictor>(make_miner(
                                "farmer", fpa_cfg, trace.dict))});
  entries.push_back({"Nexus", std::make_unique<NexusPredictor>()});
  entries.push_back({"ProbGraph",
                     std::make_unique<ProbabilityGraphPredictor>()});
  entries.push_back({"SDGraph", std::make_unique<SdGraphPredictor>()});
  entries.push_back({"LS", std::make_unique<LastSuccessorPredictor>()});
  entries.push_back({"FS", std::make_unique<FirstSuccessorPredictor>()});
  entries.push_back(
      {"RecentPop", std::make_unique<RecentPopularityPredictor>()});
  entries.push_back({"PBS",
                     std::make_unique<ContextualLastSuccessorPredictor>(
                         ContextualLastSuccessorPredictor::Mode::kProgram)});
  entries.push_back(
      {"PULS", std::make_unique<ContextualLastSuccessorPredictor>(
                   ContextualLastSuccessorPredictor::Mode::kProgramUser)});
  entries.push_back({"LRU (no prefetch)",
                     std::make_unique<NoopPredictor>()});

  ReplayConfig rc;
  rc.cache_capacity = capacity;
  rc.prefetch_degree = kDefaultPrefetchDegree;

  Table table({"algorithm", "hit ratio", "accuracy", "pollution",
               "footprint"});
  for (auto& e : entries) {
    const auto r = replay_trace(trace, *e.predictor, rc);
    table.add_row({e.name, fmt_double(r.hit_ratio() * 100, 2) + "%",
                   fmt_double(r.prefetch_accuracy() * 100, 2) + "%",
                   fmt_double(r.cache.pollution_ratio() * 100, 2) + "%",
                   fmt_bytes(r.predictor_footprint)});
  }
  std::cout << "\nzero-latency replay (policy effects only):\n";
  table.print(std::cout);

  // DES response-time comparison for the paper's three contenders.
  std::cout << "\ndiscrete-event MDS replay (latency effects):\n";
  Table rt({"algorithm", "mean RT", "p95 RT", "prefetch batches"});
  ClusterConfig cc;
  cc.mds.cache_capacity = capacity;
  cc.mds.prefetch_degree = kDefaultPrefetchDegree;
  for (const auto& name : {std::string("FPA"), std::string("Nexus"),
                           std::string("LRU (no prefetch)")}) {
    std::unique_ptr<Predictor> p;
    if (name == "FPA")
      p = std::make_unique<FpaPredictor>(
          make_miner("farmer", fpa_cfg, trace.dict));
    else if (name == "Nexus")
      p = std::make_unique<NexusPredictor>();
    else
      p = std::make_unique<NoopPredictor>();
    const auto m = run_cluster(trace, *p, cc);
    rt.add_row({name, fmt_double(m.mean_response_ms(), 3) + " ms",
                fmt_double(static_cast<double>(m.response.p95()) / 1000.0, 3) +
                    " ms",
                std::to_string(m.prefetch_batches)});
  }
  rt.print(std::cout);
  return 0;
}
