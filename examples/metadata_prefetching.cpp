// Metadata-server prefetching shoot-out: every registered predictor on a
// chosen paper trace, reporting hit ratio, prefetch accuracy, pollution and
// DES response time.
//
//   ./metadata_prefetching [LLNL|INS|RES|HP] [scale]
//
// The contender list comes from the PredictorFactory registry
// (api/predictor_factory.hpp), so a newly registered predictor shows up
// here — and in CI's smoke loop — without touching this file. FARMER_MINER
// and friends select the mining backend behind "fpa" as usual.
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>

#include "analysis/experiment.hpp"
#include "analysis/table.hpp"
#include "api/predictor_factory.hpp"
#include "api/runtime_config.hpp"
#include "prefetch/replay.hpp"
#include "storage/cluster.hpp"
#include "trace/generator.hpp"

namespace {

farmer::TraceKind parse_kind(const std::string& s) {
  using farmer::TraceKind;
  if (s == "LLNL") return TraceKind::kLLNL;
  if (s == "INS") return TraceKind::kINS;
  if (s == "RES") return TraceKind::kRES;
  return TraceKind::kHP;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace farmer;
  const TraceKind kind = parse_kind(argc > 1 ? argv[1] : "HP");
  const double scale = argc > 2 ? std::strtod(argv[2], nullptr) : 0.25;

  const RuntimeConfig env = RuntimeConfig::from_env_or_exit();
  const Trace trace = make_paper_trace(kind, kExperimentSeed, scale);
  const std::size_t capacity = default_cache_capacity(trace);
  std::cout << "trace " << trace_kind_name(kind) << ": "
            << trace.event_count() << " events, " << trace.file_count()
            << " files, cache " << capacity << " entries\n";

  FarmerConfig fpa_cfg;
  fpa_cfg.attributes = trace.has_paths ? AttributeMask::all_with_path()
                                       : AttributeMask::all_with_fileid();
  const auto build = [&](const std::string& name) {
    return make_predictor(name, fpa_cfg, trace.dict,
                          env.predictor_options);
  };

  ReplayConfig rc;
  rc.cache_capacity = capacity;
  rc.prefetch_degree = kDefaultPrefetchDegree;

  Table table({"algorithm", "hit ratio", "accuracy", "pollution",
               "footprint"});
  for (const std::string& name : registered_predictors()) {
    const auto predictor = build(name);
    const auto r = replay_trace(trace, *predictor, rc);
    table.add_row({name + " (" + predictor->name() + ")",
                   fmt_double(r.hit_ratio() * 100, 2) + "%",
                   fmt_double(r.prefetch_accuracy() * 100, 2) + "%",
                   fmt_double(r.cache.pollution_ratio() * 100, 2) + "%",
                   fmt_bytes(r.predictor_footprint)});
  }
  std::cout << "\nzero-latency replay (policy effects only):\n";
  table.print(std::cout);

  // DES response-time comparison for the paper's three contenders.
  std::cout << "\ndiscrete-event MDS replay (latency effects):\n";
  Table rt({"algorithm", "mean RT", "p95 RT", "prefetch batches"});
  ClusterConfig cc;
  cc.mds.cache_capacity = capacity;
  cc.mds.prefetch_degree = kDefaultPrefetchDegree;
  for (const std::string& name : {"fpa", "nexus", "none"}) {
    const auto p = build(name);
    const auto m = run_cluster(trace, *p, cc);
    rt.add_row({name, fmt_double(m.mean_response_ms(), 3) + " ms",
                fmt_double(static_cast<double>(m.response.p95()) / 1000.0, 3) +
                    " ms",
                std::to_string(m.prefetch_batches)});
  }
  rt.print(std::cout);
  return 0;
}
