// Explore which semantic attributes matter: replays a trace under every
// attribute combination of the paper's Table 5 and prints the resulting
// cache hit ratios side by side with the Figure-1 inter-file access
// probabilities.
//
//   ./attribute_explorer [LLNL|INS|RES|HP] [scale]
#include <cstdlib>
#include <iostream>

#include "analysis/experiment.hpp"
#include "analysis/interfile_prob.hpp"
#include "analysis/table.hpp"
#include "prefetch/fpa.hpp"
#include "prefetch/replay.hpp"
#include "trace/generator.hpp"

int main(int argc, char** argv) {
  using namespace farmer;
  const std::string kind_s = argc > 1 ? argv[1] : "HP";
  const double scale = argc > 2 ? std::strtod(argv[2], nullptr) : 0.15;
  const TraceKind kind = kind_s == "LLNL" ? TraceKind::kLLNL
                         : kind_s == "INS" ? TraceKind::kINS
                         : kind_s == "RES" ? TraceKind::kRES
                                           : TraceKind::kHP;

  const Trace trace = make_paper_trace(kind, kExperimentSeed, scale);
  const std::size_t capacity = default_cache_capacity(trace);
  std::cout << "trace " << trace_kind_name(kind) << ", cache " << capacity
            << " entries\n\n";

  // Part 1: inter-file access probability per attribute filter (Fig. 1).
  const auto prob_rows = interfile_access_probability(
      trace, figure1_combinations(trace.has_paths));
  Table probs({"filter", "inter-file access probability", "transitions"});
  for (const auto& r : prob_rows)
    probs.add_row({r.label, fmt_double(r.probability * 100, 1) + "%",
                   std::to_string(r.transitions)});
  std::cout << "successor predictability by attribute filter:\n";
  probs.print(std::cout);

  // Part 2: FPA hit ratio per attribute combination (Table 5).
  ReplayConfig rc;
  rc.cache_capacity = capacity;
  rc.prefetch_degree = kDefaultPrefetchDegree;
  Table hits({"combination", "hit ratio", "accuracy"});
  for (const auto& combo : paper_attribute_combinations(trace.has_paths)) {
    FarmerConfig cfg;
    cfg.attributes = combo.mask;
    cfg.path_mode = PathMode::kIntegrated;
    FpaPredictor fpa(cfg, trace.dict);
    const auto r = replay_trace(trace, fpa, rc);
    hits.add_row({combo.label, fmt_double(r.hit_ratio() * 100, 2) + "%",
                  fmt_double(r.prefetch_accuracy() * 100, 2) + "%"});
  }
  std::cout << "\nFPA hit ratio by attribute combination:\n";
  hits.print(std::cout);
  return 0;
}
