// Quickstart: mine file correlations from a synthetic workload and inspect
// the Correlator Lists FARMER produces.
//
//   ./quickstart [seed]
//
// Walks through the full public API surface in ~60 lines: generate a trace,
// configure the model, ingest the stream, query correlations.
#include <cstdlib>
#include <iostream>

#include "analysis/table.hpp"
#include "common/stats.hpp"
#include "core/farmer.hpp"
#include "trace/generator.hpp"

int main(int argc, char** argv) {
  using namespace farmer;
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;

  // 1. A workload: the HP-style time-sharing trace at 5% scale.
  const Trace trace = make_paper_trace(TraceKind::kHP, seed, 0.05);
  std::cout << "trace: " << trace.name << ", " << trace.event_count()
            << " events over " << trace.file_count() << " files\n";

  // 2. The model. Defaults follow the paper: p = 0.7, max_strength = 0.4,
  //    IPA path handling, all four attributes.
  FarmerConfig config;
  Farmer model(config, trace.dict);

  // 3. Ingest: each request runs the four-stage pipeline (extract,
  //    construct, mine & evaluate, sort).
  for (const TraceRecord& rec : trace.records) model.observe(rec);

  const auto stats = model.stats();
  std::cout << "requests: " << stats.requests
            << ", pairs evaluated: " << stats.mining.pairs_evaluated
            << ", accepted: " << stats.mining.pairs_accepted << " ("
            << fmt_double(stats.mining.acceptance_rate() * 100, 1)
            << "%), footprint: " << fmt_bytes(model.footprint_bytes())
            << "\n\n";

  // 4. Query: show the strongest Correlator Lists.
  Table table({"file", "correlated file", "degree", "same dir"});
  const TraceDictionary& dict = *trace.dict;
  std::size_t shown = 0;
  for (std::uint32_t f = 0; f < trace.file_count() && shown < 12; ++f) {
    const auto& list = model.correlators(FileId(f));
    if (list.size() < 2) continue;
    for (const Correlator& c : list) {
      const auto& fa = dict.files[f];
      const auto& fb = dict.files[c.file.value()];
      table.add_row({dict.path_string(fa.path),
                     dict.path_string(fb.path), fmt_double(c.degree, 3),
                     fa.group == fb.group ? "yes" : "no"});
    }
    ++shown;
  }
  table.print(std::cout);
  return 0;
}
