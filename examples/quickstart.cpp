// Quickstart: mine file correlations from a synthetic workload and inspect
// the Correlator Lists FARMER produces.
//
//   ./quickstart [seed] [backend]
//   ./quickstart --list-backends     # registered miner names, one/line
//   ./quickstart --list-predictors   # registered predictor names, one/line
//
// Walks through the full public API surface in ~60 lines: generate a trace,
// build a validated configuration, construct a mining backend through the
// factory, ingest the stream, query correlations. The --list flags print
// the factory registries so scripts (CI's smoke loops) can exercise every
// backend and predictor without hand-maintaining the lists.
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "analysis/table.hpp"
#include "api/miner_factory.hpp"
#include "api/predictor_factory.hpp"
#include "common/stats.hpp"
#include "trace/generator.hpp"

int main(int argc, char** argv) {
  using namespace farmer;
  if (argc > 1 && std::strcmp(argv[1], "--list-backends") == 0) {
    for (const std::string& name : registered_miners())
      std::cout << name << "\n";
    return 0;
  }
  if (argc > 1 && std::strcmp(argv[1], "--list-predictors") == 0) {
    for (const std::string& name : registered_predictors())
      std::cout << name << "\n";
    return 0;
  }
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;
  const char* backend = argc > 2 ? argv[2] : "farmer";

  // 1. A workload: the HP-style time-sharing trace at 5% scale.
  const Trace trace = make_paper_trace(TraceKind::kHP, seed, 0.05);
  std::cout << "trace: " << trace.name << ", " << trace.event_count()
            << " events over " << trace.file_count() << " files\n";

  // 2. A validated configuration. Defaults follow the paper: p = 0.7,
  //    max_strength = 0.4, IPA path handling, all four attributes. The
  //    builder rejects out-of-range parameters instead of mining garbage.
  const FarmerConfigResult cfg =
      FarmerConfig::builder().p(0.7).max_strength(0.4).window(4).build();
  if (!cfg) {
    std::cerr << "bad config: " << cfg.error() << "\n";
    return 1;
  }

  // 3. The model, chosen at runtime: "farmer" (serial), "sharded"
  //    (parallel ingest), "concurrent" (async lock-free ingest), "router"
  //    (multi-tenant partitioning over factory-built children), or
  //    "nexus" (the p = 0 sequence-only baseline).
  std::unique_ptr<CorrelationMiner> model;
  try {
    model = make_miner(backend, cfg.value(), trace.dict);
  } catch (const std::invalid_argument& e) {
    std::cerr << e.what() << "\n";
    return 1;
  }

  // 4. Ingest: each request runs the four-stage pipeline (extract,
  //    construct, mine & evaluate, sort). flush() is the ingest barrier —
  //    a no-op on synchronous backends, a drain on "concurrent" — so
  //    bulk-load-then-query code is backend-agnostic.
  model->observe_batch(trace.records);
  model->flush();

  const MinerStats stats = model->stats();
  std::cout << "backend: " << model->name() << ", requests: "
            << stats.requests
            << ", pairs evaluated: " << stats.pairs_evaluated
            << ", accepted: " << stats.pairs_accepted << " ("
            << fmt_double(stats.acceptance_rate() * 100, 1)
            << "%), footprint: " << fmt_bytes(model->footprint_bytes())
            << "\n\n";

  // 5. Query: show the strongest Correlator Lists via immutable snapshots.
  Table table({"file", "correlated file", "degree", "same dir"});
  const TraceDictionary& dict = *trace.dict;
  std::size_t shown = 0;
  for (std::uint32_t f = 0; f < trace.file_count() && shown < 12; ++f) {
    const CorrelatorView list = model->snapshot(FileId(f));
    if (list.size() < 2) continue;
    for (const Correlator& c : list) {
      const auto& fa = dict.files[f];
      const auto& fb = dict.files[c.file.value()];
      table.add_row({dict.path_string(fa.path),
                     dict.path_string(fb.path), fmt_double(c.degree, 3),
                     fa.group == fb.group ? "yes" : "no"});
    }
    ++shown;
  }
  table.print(std::cout);
  return 0;
}
