// FARMER-enabled data layout (paper Section 4.2): mine correlations, group
// read-only files, place groups contiguously on OSDs and compare the I/O
// cost model against creation-order scatter.
//
//   ./layout_optimizer [LLNL|INS|RES|HP] [scale] [backend]
#include <cstdlib>
#include <iostream>

#include "analysis/experiment.hpp"
#include "analysis/table.hpp"
#include "api/miner_factory.hpp"
#include "common/stats.hpp"
#include "layout/layout.hpp"
#include "trace/generator.hpp"

int main(int argc, char** argv) {
  using namespace farmer;
  const std::string kind_s = argc > 1 ? argv[1] : "HP";
  const double scale = argc > 2 ? std::strtod(argv[2], nullptr) : 0.15;
  const char* backend = argc > 3 ? argv[3] : "farmer";
  const TraceKind kind = kind_s == "LLNL" ? TraceKind::kLLNL
                         : kind_s == "INS" ? TraceKind::kINS
                         : kind_s == "RES" ? TraceKind::kRES
                                           : TraceKind::kHP;

  const Trace trace = make_paper_trace(kind, kExperimentSeed, scale);
  FarmerConfig cfg;
  cfg.attributes = trace.has_paths ? AttributeMask::all_with_path()
                                   : AttributeMask::all_with_fileid();
  std::unique_ptr<CorrelationMiner> model;
  try {
    model = make_miner(backend, cfg, trace.dict);
  } catch (const std::invalid_argument& e) {
    std::cerr << e.what() << "\n";
    return 1;
  }
  model->observe_batch(trace.records);
  model->flush();  // ingest barrier; no-op on synchronous backends

  GrouperConfig gc;
  const auto groups = build_groups(*model, *trace.dict, gc);
  std::cout << "mined " << groups.groups.size() << " layout groups covering "
            << groups.grouped_files << " of " << trace.file_count()
            << " files (read-only only: " << std::boolalpha
            << gc.read_only_only << ")\n\n";

  LayoutConfig lc;
  const auto scatter = place_scatter(*trace.dict, lc);
  const auto grouped = place_grouped(*trace.dict, groups, lc);
  const auto m_scatter = evaluate_layout(trace, scatter, nullptr, lc);
  const auto m_grouped = evaluate_layout(trace, grouped, &groups, lc);

  Table table({"placement", "seeks", "sequential fraction",
               "mean seek (blocks)", "modelled I/O time"});
  auto row = [&](const char* name, const LayoutMetrics& m) {
    table.add_row({name, std::to_string(m.seeks),
                   fmt_double(m.sequential_fraction() * 100, 2) + "%",
                   fmt_double(m.mean_seek_blocks, 0),
                   fmt_double(m.total_io_ms, 1) + " ms"});
  };
  row("scatter (creation order)", m_scatter);
  row("FARMER groups (contiguous)", m_grouped);
  table.print(std::cout);

  const double speedup = m_scatter.total_io_ms / m_grouped.total_io_ms;
  std::cout << "\nmodelled I/O speedup from correlation-directed layout: "
            << fmt_double(speedup, 2) << "x\n";
  return 0;
}
