// Generate, persist, reload and summarise synthetic traces.
//
//   ./trace_inspector [LLNL|INS|RES|HP] [scale] [output.bin]
#include <cstdlib>
#include <iostream>
#include <set>
#include <unordered_map>

#include "analysis/table.hpp"
#include "common/stats.hpp"
#include "trace/generator.hpp"
#include "trace/trace_io.hpp"

int main(int argc, char** argv) {
  using namespace farmer;
  const std::string kind_s = argc > 1 ? argv[1] : "HP";
  const double scale = argc > 2 ? std::strtod(argv[2], nullptr) : 0.1;
  const std::string out = argc > 3 ? argv[3] : "";
  const TraceKind kind = kind_s == "LLNL" ? TraceKind::kLLNL
                         : kind_s == "INS" ? TraceKind::kINS
                         : kind_s == "RES" ? TraceKind::kRES
                                           : TraceKind::kHP;

  const Trace trace = make_paper_trace(kind, 20080122, scale);

  std::set<std::uint32_t> users, procs, hosts, groups;
  std::unordered_map<std::uint32_t, std::uint64_t> per_file;
  for (const auto& r : trace.records) {
    users.insert(r.user_token.value());
    procs.insert(r.process_token.value());
    hosts.insert(r.host_token.value());
    ++per_file[r.file.value()];
  }
  for (const auto& f : trace.dict->files)
    if (f.group != kNoGroup) groups.insert(f.group);

  Table t({"property", "value"});
  t.add_row({"trace", trace.name});
  t.add_row({"events", std::to_string(trace.event_count())});
  t.add_row({"files", std::to_string(trace.file_count())});
  t.add_row({"files touched", std::to_string(per_file.size())});
  t.add_row({"distinct users", std::to_string(users.size())});
  t.add_row({"distinct processes", std::to_string(procs.size())});
  t.add_row({"distinct hosts", std::to_string(hosts.size())});
  t.add_row({"correlation groups", std::to_string(groups.size())});
  t.add_row({"duration", fmt_double(to_ms(trace.duration()) / 1000.0, 1) +
                             " s (simulated)"});
  t.add_row({"has paths", trace.has_paths ? "yes" : "no"});
  t.print(std::cout);

  std::cout << "\nfirst records:\n";
  write_trace_tsv(trace, std::cout, 10);

  if (!out.empty()) {
    write_trace_binary(trace, out);
    const Trace reloaded = read_trace_binary(out);
    std::cout << "\nwrote + reloaded " << out << ": "
              << reloaded.event_count() << " events, round-trip "
              << (reloaded.event_count() == trace.event_count() ? "OK"
                                                                : "MISMATCH")
              << "\n";
  }
  return 0;
}
